// Randomized-program generator for the differential fuzz battery.
//
// Each shape emits a seeded, self-contained KX86 program (a flat byte
// image loaded at a fixed code address, always ending in hlt) chosen to
// stress one structural hazard of the chained superblock engine:
// back-edge links re-followed in tight loops, branch-to-branch ladders,
// self-modifying code that rewrites an already-chained successor,
// fall-through chains that cross a page boundary, and call/ret webs.
// The battery runs every program through the stepping, block, and
// chained engines and requires bit-identical outcomes, so the generator
// only has to produce *deterministic* programs — it never needs to know
// what the right answer is.
//
// Programs are built from symbolic items (instruction + optional branch
// target or code-address immediate, both as item indices).  All
// branches are encoded in their long forms, so item offsets are fixed
// by a single length pass and targets/immediates resolve without a
// relaxation fixpoint.
#pragma once

#include <cstdint>
#include <vector>

#include "isa/encode.h"
#include "isa/instruction.h"
#include "support/rng.h"

namespace kfi::isa::fuzz {

inline constexpr std::uint32_t kFuzzPageSize = 4096;

// --- Symbolic assembler -------------------------------------------------

class Asm {
 public:
  // Plain instruction.  Returns the item index (usable as a target).
  int add(const Instruction& instr) {
    items_.push_back({instr, kNone, kNone, 0, false});
    return static_cast<int>(items_.size()) - 1;
  }

  // Branch whose `rel` is resolved to reach item `target` (may be an
  // index not emitted yet; call set_target later if so).
  int branch(const Instruction& instr, int target) {
    items_.push_back({instr, target, kNone, 0, false});
    return static_cast<int>(items_.size()) - 1;
  }

  void set_target(int item, int target) { items_[item].branch_target = target; }

  // Re-aims an addr_imm item after its target exists.
  void set_imm_target(int item, int target, std::int32_t delta) {
    items_[item].imm_target = target;
    items_[item].imm_delta = delta;
  }

  // Instruction whose src immediate is patched to the code-space
  // address of item `target` plus `delta` (e.g. +1 to hit the imm32 of
  // a mov-ri).  The placeholder immediate keeps the encoded length of
  // the final value.
  int addr_imm(Instruction instr, int target, std::int32_t delta) {
    instr.src = Operand::make_imm(0x7FFFFFFF);
    items_.push_back({instr, kNone, target, delta, false});
    return static_cast<int>(items_.size()) - 1;
  }

  // 1-byte nop padding up to the next page boundary (relative to the
  // page-aligned load address); a no-op when already aligned.
  int pad_to_page() {
    Instruction nop;
    nop.op = Op::Nop;
    items_.push_back({nop, kNone, kNone, 0, true});
    return static_cast<int>(items_.size()) - 1;
  }

  int next_index() const { return static_cast<int>(items_.size()); }

  // Byte offset of an item within the assembled image (valid only
  // after assemble()).
  std::size_t offset_of(int item) const {
    return offsets_[static_cast<std::size_t>(item)];
  }

  // Resolves offsets, branch displacements, and address immediates,
  // then encodes.  `code_virt` must be page-aligned.
  std::vector<std::uint8_t> assemble(std::uint32_t code_virt) {
    const std::size_t n = items_.size();
    offsets_.assign(n + 1, 0);
    for (std::size_t i = 0; i < n; ++i) {
      std::size_t len;
      if (items_[i].pad_page) {
        len = (kFuzzPageSize - (offsets_[i] % kFuzzPageSize)) % kFuzzPageSize;
      } else {
        len = encoded_length(items_[i].instr, /*force_long_branch=*/true);
      }
      offsets_[i + 1] = offsets_[i] + len;
    }
    std::vector<std::uint8_t> bytes;
    bytes.reserve(offsets_[n]);
    for (std::size_t i = 0; i < n; ++i) {
      Item& item = items_[i];
      if (item.pad_page) {
        bytes.resize(offsets_[i + 1], 0x90);  // nop
        continue;
      }
      if (item.branch_target != kNone) {
        item.instr.rel = static_cast<std::int32_t>(
            offsets_[static_cast<std::size_t>(item.branch_target)]) -
            static_cast<std::int32_t>(offsets_[i + 1]);
      }
      if (item.imm_target != kNone) {
        item.instr.src = Operand::make_imm(static_cast<std::int32_t>(
            code_virt +
            offsets_[static_cast<std::size_t>(item.imm_target)] +
            static_cast<std::uint32_t>(item.imm_delta)));
      }
      const bool ok = encode(item.instr, bytes, /*force_long_branch=*/true);
      if (!ok || bytes.size() != offsets_[i + 1]) return {};  // bug in shape
    }
    return bytes;
  }

 private:
  static constexpr int kNone = -1;
  struct Item {
    Instruction instr;
    int branch_target;
    int imm_target;
    std::int32_t imm_delta;
    bool pad_page;
  };
  std::vector<Item> items_;
  std::vector<std::size_t> offsets_;
};

// --- Instruction factories (shared with the vm differential tests) ------

inline Instruction mov_ri(Reg r, std::int32_t imm) {
  Instruction i;
  i.op = Op::Mov;
  i.dst = Operand::make_reg(r);
  i.src = Operand::make_imm(imm);
  return i;
}
inline Instruction alu_rr(Op op, Reg dst, Reg src) {
  Instruction i;
  i.op = op;
  i.dst = Operand::make_reg(dst);
  i.src = Operand::make_reg(src);
  return i;
}
inline Instruction alu_ri(Op op, Reg dst, std::int32_t imm) {
  Instruction i;
  i.op = op;
  i.dst = Operand::make_reg(dst);
  i.src = Operand::make_imm(imm);
  return i;
}
inline Instruction mem_op(Op op, Reg r, Reg base, std::int32_t disp,
                          bool load) {
  Instruction i;
  i.op = op;
  MemRef m;
  m.has_base = true;
  m.base = base;
  m.disp = disp;
  if (load) {
    i.dst = Operand::make_reg(r);
    i.src = Operand::make_mem(m);
  } else {
    i.dst = Operand::make_mem(m);
    i.src = Operand::make_reg(r);
  }
  return i;
}
inline Instruction unary(Op op, Reg r) {
  Instruction i;
  i.op = op;
  i.dst = Operand::make_reg(r);
  return i;
}
inline Instruction nullary(Op op) {
  Instruction i;
  i.op = op;
  return i;
}
inline Instruction jcc(Cond cond, int /*placeholder*/ = 0) {
  Instruction i;
  i.op = Op::Jcc;
  i.cond = cond;
  return i;
}
inline Instruction setcc(Cond cond, Reg r) {
  Instruction i;
  i.op = Op::Setcc;
  i.cond = cond;
  i.dst = Operand::make_reg8(r);
  return i;
}
inline Instruction jmp() {
  Instruction i;
  i.op = Op::Jmp;
  return i;
}
inline Instruction call() {
  Instruction i;
  i.op = Op::Call;
  return i;
}

// --- Shapes -------------------------------------------------------------

enum class Shape {
  Mixed,        // the historical random mix: alu, memory, skips, traps, SMC
  TightLoops,   // countdown loops — back-edge chain links re-followed
  BranchLadder, // permuted jmp/jcc ladders — branch-to-branch chains
  SmcChain,     // a loop that rewrites an already-chained successor block
  CrossPage,    // fall-through and jumps across a page boundary
  CallRet,      // call/ret webs — CallInd-free but stack-driven successors
  DeadFlags,    // long dead-flag ALU runs ended by a live cmp + jcc
  FlagEdge,     // flag producer/consumer pairs straddling chain edges
  MemMix,       // dense loads/stores, incl. page-crossing pointers (D-TLB)
  CondEdge,     // both-way conditional diamonds — widened-trace side exits
};

inline constexpr Shape kAllShapes[] = {
    Shape::Mixed,      Shape::TightLoops, Shape::BranchLadder,
    Shape::SmcChain,   Shape::CrossPage,  Shape::CallRet,
    Shape::DeadFlags,  Shape::FlagEdge,   Shape::MemMix,
    Shape::CondEdge,
};

inline const char* shape_name(Shape s) {
  switch (s) {
    case Shape::Mixed: return "mixed";
    case Shape::TightLoops: return "tight_loops";
    case Shape::BranchLadder: return "branch_ladder";
    case Shape::SmcChain: return "smc_chain";
    case Shape::CrossPage: return "cross_page";
    case Shape::CallRet: return "call_ret";
    case Shape::DeadFlags: return "dead_flags";
    case Shape::FlagEdge: return "flag_edge";
    case Shape::MemMix: return "mem_mix";
    case Shape::CondEdge: return "cond_edge";
  }
  return "?";
}

struct FuzzProgram {
  std::vector<std::uint8_t> bytes;  // load at code_virt
  std::uint64_t max_cycles = 20000;
};

namespace detail {

inline Reg scratch(Rng& rng) {  // eax/ecx/edx/ebx
  return static_cast<Reg>(rng.below(4));
}

// A few register-only ops that cannot fault or touch memory.
inline void emit_safe_body(Asm& a, Rng& rng, int count) {
  static constexpr Op kAlu[] = {Op::Add, Op::Sub, Op::Xor, Op::Or,
                                Op::And, Op::Cmp, Op::Test};
  for (int i = 0; i < count; ++i) {
    switch (rng.below(3)) {
      case 0:
        a.add(mov_ri(scratch(rng), static_cast<std::int32_t>(rng.next_u32())));
        break;
      case 1:
        a.add(alu_rr(kAlu[rng.below(7)], scratch(rng), scratch(rng)));
        break;
      default:
        a.add(unary(rng.below(2) ? Op::Inc : Op::Dec, scratch(rng)));
        break;
    }
  }
}

inline void gen_mixed(Asm& a, Rng& rng, std::uint32_t code_virt,
                      std::uint32_t data_virt) {
  const int count = 24 + static_cast<int>(rng.below(40));
  for (int i = 0; i < count; ++i) {
    switch (rng.below(10)) {
      case 0:
      case 1:
        emit_safe_body(a, rng, 1);
        break;
      case 2: {  // data load/store
        a.add(mov_ri(Reg::Esi, static_cast<std::int32_t>(
                                   data_virt + 4 * rng.below(64))));
        a.add(mem_op(Op::Mov, scratch(rng), Reg::Esi, 0,
                     rng.below(2) == 0));
        break;
      }
      case 3: {  // store into the code page tail: version-bump stress
        // The tail past +0x800 is dead space (mixed programs stay well
        // under 2 KiB), so the write is harmless but bumps the
        // executing page's version every iteration it runs.
        a.add(mov_ri(Reg::Edi, static_cast<std::int32_t>(
                                   code_virt + 0x800 + 4 * rng.below(8))));
        a.add(mem_op(Op::Mov, Reg::Eax, Reg::Edi, 0, false));
        break;
      }
      case 4: {  // conditional skip over one instruction
        const int j = a.branch(jcc(static_cast<Cond>(rng.below(16))), 0);
        a.add(mov_ri(scratch(rng),
                     static_cast<std::int32_t>(rng.next_u32())));
        a.set_target(j, a.next_index());
        break;
      }
      case 5: {  // short unconditional hop (trace-widening fodder)
        const int j = a.branch(jmp(), 0);
        emit_safe_body(a, rng, static_cast<int>(rng.below(3)));
        a.set_target(j, a.next_index());
        break;
      }
      case 6:
        if (rng.below(8) == 0) {
          // Rare trap: load from unmapped space parks at the handler.
          a.add(mov_ri(Reg::Ecx, static_cast<std::int32_t>(0xC2000000)));
          a.add(mem_op(Op::Mov, Reg::Edx, Reg::Ecx, 0, true));
        } else {
          a.add(nullary(Op::Nop));
        }
        break;
      case 7:
        if (rng.below(16) == 0) {
          a.add(nullary(rng.below(2) ? Op::Ud2 : Op::Int3));  // trap, park
        } else {
          a.add(alu_rr(Op::Cmp, scratch(rng), scratch(rng)));
        }
        break;
      default:
        emit_safe_body(a, rng, 1);
        break;
    }
  }
}

inline void gen_tight_loops(Asm& a, Rng& rng, std::uint32_t data_virt) {
  a.add(mov_ri(Reg::Esi, static_cast<std::int32_t>(data_virt)));
  const int loops = 1 + static_cast<int>(rng.below(3));
  for (int l = 0; l < loops; ++l) {
    a.add(mov_ri(Reg::Ecx,
                 3 + static_cast<std::int32_t>(rng.below(40))));
    const int top = a.next_index();
    const int body = 1 + static_cast<int>(rng.below(4));
    for (int i = 0; i < body; ++i) {
      if (rng.below(4) == 0) {
        a.add(mem_op(Op::Mov, Reg::Eax, Reg::Esi,
                     static_cast<std::int32_t>(4 * rng.below(16)),
                     rng.below(2) == 0));
      } else {
        static constexpr Reg kSpare[] = {Reg::Eax, Reg::Edx, Reg::Ebx};
        a.add(alu_rr(rng.below(2) ? Op::Add : Op::Xor,
                     kSpare[rng.below(3)],  // never ecx, the loop counter
                     kSpare[rng.below(3)]));
      }
    }
    a.add(unary(Op::Dec, Reg::Ecx));
    a.branch(jcc(Cond::Ne), top);
  }
}

inline void gen_branch_ladder(Asm& a, Rng& rng) {
  // K logical blocks laid out in a random memory order; block i ends in
  // a jmp (sometimes a jcc/jmp pair) to logical block i+1.  Several
  // blocks are empty — pure branch-to-branch hops.
  const int k = 6 + static_cast<int>(rng.below(10));
  std::vector<int> layout(static_cast<std::size_t>(k));
  for (int i = 0; i < k; ++i) layout[static_cast<std::size_t>(i)] = i;
  for (int i = k - 1; i > 0; --i) {
    const int j = static_cast<int>(rng.below(static_cast<std::uint64_t>(i + 1)));
    std::swap(layout[static_cast<std::size_t>(i)],
              layout[static_cast<std::size_t>(j)]);
  }
  // Entry must be the memory-first block; rotate the logical chain so
  // layout[0] is logical 0.
  std::vector<int> logical_of_pos(layout.begin(), layout.end());
  const int first_logical = logical_of_pos[0];
  std::vector<int> start_item(static_cast<std::size_t>(k), -1);
  std::vector<int> pending_jmp(static_cast<std::size_t>(k), -1);
  std::vector<int> pending_jcc(static_cast<std::size_t>(k), -1);
  for (int pos = 0; pos < k; ++pos) {
    const int logical =
        (logical_of_pos[static_cast<std::size_t>(pos)] - first_logical + k) %
        k;
    start_item[static_cast<std::size_t>(logical)] = a.next_index();
    if (rng.below(3) != 0) {  // 2/3 of blocks carry a small body
      emit_safe_body(a, rng, 1 + static_cast<int>(rng.below(3)));
    }
    if (logical == k - 1) {
      a.add(nullary(Op::Hlt));
      continue;
    }
    if (rng.below(3) == 0) {
      // jcc to the successor backed by a jmp to the same place: taken
      // exercises the target link slot, not-taken falls through into a
      // one-instruction jmp block — a branch-to-branch hop.
      pending_jcc[static_cast<std::size_t>(logical)] =
          a.branch(jcc(static_cast<Cond>(rng.below(16))), 0);
    }
    pending_jmp[static_cast<std::size_t>(logical)] = a.branch(jmp(), 0);
  }
  for (int logical = 0; logical + 1 < k; ++logical) {
    const int succ = start_item[static_cast<std::size_t>(logical + 1)];
    a.set_target(pending_jmp[static_cast<std::size_t>(logical)], succ);
    if (pending_jcc[static_cast<std::size_t>(logical)] >= 0) {
      a.set_target(pending_jcc[static_cast<std::size_t>(logical)], succ);
    }
  }
}

inline void gen_smc_chain(Asm& a, Rng& rng) {
  // A two-pass loop: the first iteration builds and chains
  // head -> mid -> marker; the store then rewrites the marker block's
  // immediate in place, so the second iteration must observe the severed
  // chain and the new bytes.
  const std::int32_t iters = 2 + static_cast<std::int32_t>(rng.below(3));
  a.add(mov_ri(Reg::Edi, iters));
  a.add(mov_ri(Reg::Esi, 0));
  const int outer = a.next_index();
  // eax = seed-dependent value mixed with the loop counter.
  a.add(mov_ri(Reg::Eax, static_cast<std::int32_t>(rng.next_u32())));
  a.add(alu_rr(Op::Add, Reg::Eax, Reg::Edi));
  const int store = a.addr_imm(mov_ri(Reg::Ecx, 0), 0, 0);  // re-aimed below
  a.add(mem_op(Op::Mov, Reg::Eax, Reg::Ecx, 0, false));     // rewrite imm32
  const int hop1 = a.branch(jmp(), 0);
  // mid block (chained between head and marker)
  a.set_target(hop1, a.next_index());
  emit_safe_body(a, rng, 1 + static_cast<int>(rng.below(2)));
  const int hop2 = a.branch(jmp(), 0);
  // marker block: the rewritten mov executes here.
  a.set_target(hop2, a.next_index());
  const int marker = a.add(mov_ri(Reg::Ebx, 0x11111111));
  // ecx = &marker_imm32: one byte past the B8+r opcode, so the dword
  // store replaces exactly the immediate and the marker stays decodable.
  a.set_imm_target(store, marker, 1);
  a.add(alu_rr(Op::Add, Reg::Esi, Reg::Ebx));
  a.add(unary(Op::Dec, Reg::Edi));
  a.branch(jcc(Cond::Ne), outer);
}

inline void gen_cross_page(Asm& a, Rng& rng, std::uint32_t data_virt) {
  emit_safe_body(a, rng, 2 + static_cast<int>(rng.below(6)));
  const bool jump_across = rng.below(2) == 0;
  int hop = -1;
  if (jump_across) {
    // Sometimes-taken jcc over the sled straight onto the next page.
    hop = a.branch(jcc(static_cast<Cond>(rng.below(16))), 0);
  }
  // Fall-through path: a nop sled to the page boundary.  Cap-ended
  // blocks chain via fall-through, so the chain crosses the page.
  a.pad_to_page();
  if (hop >= 0) a.set_target(hop, a.next_index());
  // Second page: a small loop so the cross-page entry block is re-entered.
  a.add(mov_ri(Reg::Esi, static_cast<std::int32_t>(data_virt + 0x100)));
  a.add(mov_ri(Reg::Ecx, 2 + static_cast<std::int32_t>(rng.below(6))));
  const int top = a.next_index();
  emit_safe_body(a, rng, 1 + static_cast<int>(rng.below(3)));
  a.add(mem_op(Op::Mov, Reg::Eax, Reg::Esi, 0, false));
  a.add(unary(Op::Dec, Reg::Ecx));
  a.branch(jcc(Cond::Ne), top);
}

inline void gen_call_ret(Asm& a, Rng& rng) {
  // Main calls a handful of subroutines (some nested), then halts.
  const int subs = 2 + static_cast<int>(rng.below(3));
  std::vector<int> call_sites;
  const int calls = 2 + static_cast<int>(rng.below(4));
  std::vector<int> which;
  for (int c = 0; c < calls; ++c) {
    emit_safe_body(a, rng, static_cast<int>(rng.below(3)));
    call_sites.push_back(a.branch(call(), 0));
    which.push_back(static_cast<int>(rng.below(static_cast<std::uint64_t>(subs))));
  }
  a.add(nullary(Op::Hlt));
  std::vector<int> sub_start(static_cast<std::size_t>(subs));
  std::vector<int> nested_site;
  std::vector<int> nested_target;
  for (int s = 0; s < subs; ++s) {
    sub_start[static_cast<std::size_t>(s)] = a.next_index();
    emit_safe_body(a, rng, 1 + static_cast<int>(rng.below(4)));
    if (s + 1 < subs && rng.below(2) == 0) {
      nested_site.push_back(a.branch(call(), 0));
      nested_target.push_back(s + 1);  // only call later subs: no recursion
    }
    a.add(nullary(Op::Ret));
  }
  for (std::size_t i = 0; i < call_sites.size(); ++i) {
    a.set_target(call_sites[i],
                 sub_start[static_cast<std::size_t>(which[i])]);
  }
  for (std::size_t i = 0; i < nested_site.size(); ++i) {
    a.set_target(nested_site[i],
                 sub_start[static_cast<std::size_t>(nested_target[i])]);
  }
}

inline void gen_dead_flags(Asm& a, Rng& rng) {
  // Long straight-line runs of register-only ALU ops whose flag writes
  // are all dead — each op's flags are clobbered by a later op before
  // any consumer reads them — closed by a cmp/jcc pair whose flags ARE
  // live, all inside a countdown loop so chained traces re-follow the
  // run.  The threaded engine's liveness pass should elide almost the
  // whole run; the differential battery proves the elision is
  // invisible.  Inc/Dec (CF preserved) and Neg are mixed in so partial
  // kill masks get exercised, not just the all-five ALU kills.
  static constexpr Op kAlu[] = {Op::Add, Op::Sub, Op::Xor, Op::Or, Op::And};
  static constexpr Reg kSpare[] = {Reg::Eax, Reg::Ecx, Reg::Edx, Reg::Ebx};
  a.add(mov_ri(Reg::Edi, 2 + static_cast<std::int32_t>(rng.below(4))));
  const int top = a.next_index();
  const int run = 8 + static_cast<int>(rng.below(24));
  for (int i = 0; i < run; ++i) {
    switch (rng.below(4)) {
      case 0:
        a.add(alu_rr(kAlu[rng.below(5)], kSpare[rng.below(4)],
                     kSpare[rng.below(4)]));
        break;
      case 1:
        a.add(unary(rng.below(2) ? Op::Inc : Op::Dec, kSpare[rng.below(4)]));
        break;
      case 2:
        a.add(unary(Op::Neg, kSpare[rng.below(4)]));
        break;
      default:
        a.add(mov_ri(kSpare[rng.below(4)],
                     static_cast<std::int32_t>(rng.next_u32())));
        break;
    }
  }
  // The run's only live flags: a cmp consumed by a one-instruction skip.
  a.add(alu_rr(Op::Cmp, kSpare[rng.below(4)], kSpare[rng.below(4)]));
  const int skip = a.branch(jcc(static_cast<Cond>(rng.below(16))), 0);
  a.add(mov_ri(kSpare[rng.below(4)],
               static_cast<std::int32_t>(rng.next_u32())));
  a.set_target(skip, a.next_index());
  a.add(unary(Op::Dec, Reg::Edi));
  a.branch(jcc(Cond::Ne), top);
}

inline void gen_flag_edge(Asm& a, Rng& rng) {
  // Segments where the flag producer is the LAST op before a chain edge
  // and the consumer (setcc or jcc) is the FIRST op of the successor
  // block: if chain edges were not treated as full-liveness boundaries,
  // the producer's flags would look dead inside its own block and be
  // elided, and the successor would branch on stale flags.  A countdown
  // loop re-follows the patched links so the second pass runs through
  // already-threaded traces.
  a.add(mov_ri(Reg::Edi, 2 + static_cast<std::int32_t>(rng.below(3))));
  a.add(mov_ri(Reg::Esi, 0));
  const int top = a.next_index();
  const int segs = 3 + static_cast<int>(rng.below(4));
  for (int s = 0; s < segs; ++s) {
    emit_safe_body(a, rng, 1 + static_cast<int>(rng.below(3)));
    // Producer right at the edge.  Cmp/Test write flags without
    // touching registers; Add/Sub also mutate the register file.
    static constexpr Op kProd[] = {Op::Cmp, Op::Test, Op::Add, Op::Sub};
    a.add(alu_rr(kProd[rng.below(4)], scratch(rng), scratch(rng)));
    // The edge: jmp chains via the target link, jcc via target or
    // fall-through — both aimed at the consumer.
    const int edge = a.branch(
        rng.below(2) ? jmp() : jcc(static_cast<Cond>(rng.below(16))), 0);
    a.set_target(edge, a.next_index());
    // Consumer straddles the edge: first op of the successor block.
    if (rng.below(2) == 0) {
      a.add(setcc(static_cast<Cond>(rng.below(16)), scratch(rng)));
    } else {
      const int skip = a.branch(jcc(static_cast<Cond>(rng.below(16))), 0);
      a.add(mov_ri(scratch(rng), static_cast<std::int32_t>(rng.next_u32())));
      a.set_target(skip, a.next_index());
    }
    // Accumulate so every segment's outcome stays run-visible even if
    // later filler overwrites the scratch registers.
    a.add(alu_rr(Op::Add, Reg::Esi, scratch(rng)));
  }
  a.add(unary(Op::Dec, Reg::Edi));
  a.branch(jcc(Cond::Ne), top);
}

inline void gen_mem_mix(Asm& a, Rng& rng, std::uint32_t data_virt) {
  // Dense loads and stores inside a countdown loop: the memfast D-TLB
  // must serve repeat accesses to the same pages without changing any
  // run-visible state, and the page-crossing pointers (esi parked a
  // few bytes shy of a page boundary) drive every 32-bit access
  // through the two-page translate path on some iterations.  Stores
  // are interleaved with reads of the same slots so a stale D-TLB
  // frame or a missed write-permission check shows up as a wrong
  // value, not just a wrong counter.
  static constexpr Reg kSpare[] = {Reg::Eax, Reg::Edx, Reg::Ebx};
  a.add(mov_ri(Reg::Esi, static_cast<std::int32_t>(
                             data_virt + 4 * rng.below(32))));
  // 0xFFD..0xFFF within the page: a 32-bit access straddles the page
  // boundary; 0xFFC stays single-page as a control.
  a.add(mov_ri(Reg::Edi, static_cast<std::int32_t>(
                             data_virt + kFuzzPageSize - 4 + rng.below(4))));
  a.add(mov_ri(Reg::Ecx, 3 + static_cast<std::int32_t>(rng.below(10))));
  const int top = a.next_index();
  const int body = 6 + static_cast<int>(rng.below(10));
  for (int i = 0; i < body; ++i) {
    const Reg r = kSpare[rng.below(3)];
    switch (rng.below(6)) {
      case 0:  // same-page store
        a.add(mem_op(Op::Mov, r, Reg::Esi,
                     static_cast<std::int32_t>(4 * rng.below(16)), false));
        break;
      case 1:  // same-page load
        a.add(mem_op(Op::Mov, r, Reg::Esi,
                     static_cast<std::int32_t>(4 * rng.below(16)), true));
        break;
      case 2:  // page-crossing (or boundary-adjacent) store
        a.add(mem_op(Op::Mov, r, Reg::Edi, 0, false));
        break;
      case 3:  // page-crossing (or boundary-adjacent) load
        a.add(mem_op(Op::Mov, r, Reg::Edi, 0, true));
        break;
      case 4:  // second page, far slot: a distinct D-TLB set
        a.add(mem_op(Op::Mov, r, Reg::Esi,
                     static_cast<std::int32_t>(kFuzzPageSize +
                                               4 * rng.below(16)),
                     rng.below(2) == 0));
        break;
      default:
        emit_safe_body(a, rng, 1);
        break;
    }
  }
  a.add(unary(Op::Dec, Reg::Ecx));
  a.branch(jcc(Cond::Ne), top);
}

inline void gen_cond_edge(Asm& a, Rng& rng) {
  // Conditional diamonds whose direction alternates across iterations
  // of an enclosing countdown loop: a widened memfast trace predecodes
  // one edge of each jcc and must side-exit cleanly whenever the other
  // edge is taken — half the iterations, by construction, since the
  // branch keys on low bits of the loop counter.  Each path writes a
  // different accumulator delta so a wrongly-followed predecoded edge
  // changes run-visible state.
  static constexpr Reg kSpare[] = {Reg::Eax, Reg::Edx, Reg::Ebx};
  a.add(mov_ri(Reg::Edi, 4 + static_cast<std::int32_t>(rng.below(10))));
  a.add(mov_ri(Reg::Esi, 0));
  const int top = a.next_index();
  const int diamonds = 2 + static_cast<int>(rng.below(3));
  for (int d = 0; d < diamonds; ++d) {
    // eax = edi & mask: alternates with period 2, 4, or 8.
    a.add(alu_rr(Op::Mov, Reg::Eax, Reg::Edi));
    a.add(alu_ri(Op::And, Reg::Eax,
                 static_cast<std::int32_t>(1u << rng.below(3))));
    const int jcc_item =
        a.branch(jcc(rng.below(2) ? Cond::Ne : Cond::E), 0);
    // Fall-through arm.
    a.add(alu_ri(Op::Add, Reg::Esi,
                 1 + static_cast<std::int32_t>(rng.below(100))));
    emit_safe_body(a, rng, static_cast<int>(rng.below(2)));
    const int join = a.branch(jmp(), 0);
    // Taken arm.
    a.set_target(jcc_item, a.next_index());
    a.add(alu_ri(Op::Add, Reg::Esi,
                 1 + static_cast<std::int32_t>(rng.below(100))));
    a.add(alu_rr(rng.below(2) ? Op::Xor : Op::Add, kSpare[rng.below(3)],
                 kSpare[rng.below(3)]));
    a.set_target(join, a.next_index());
  }
  a.add(unary(Op::Dec, Reg::Edi));
  a.branch(jcc(Cond::Ne), top);
}

}  // namespace detail

// Generates the seeded program for `shape`.  `code_virt` must be
// page-aligned; `data_virt` names a mapped, writable scratch region.
inline FuzzProgram generate(Shape shape, std::uint64_t seed,
                            std::uint32_t code_virt,
                            std::uint32_t data_virt) {
  Rng rng(seed * 0x9E3779B97F4A7C15ULL + static_cast<std::uint64_t>(shape));
  Asm a;
  switch (shape) {
    case Shape::Mixed:
      detail::gen_mixed(a, rng, code_virt, data_virt);
      break;
    case Shape::TightLoops:
      detail::gen_tight_loops(a, rng, data_virt);
      break;
    case Shape::BranchLadder:
      detail::gen_branch_ladder(a, rng);
      break;
    case Shape::SmcChain:
      detail::gen_smc_chain(a, rng);
      break;
    case Shape::CrossPage:
      detail::gen_cross_page(a, rng, data_virt);
      break;
    case Shape::CallRet:
      detail::gen_call_ret(a, rng);
      break;
    case Shape::DeadFlags:
      detail::gen_dead_flags(a, rng);
      break;
    case Shape::FlagEdge:
      detail::gen_flag_edge(a, rng);
      break;
    case Shape::MemMix:
      detail::gen_mem_mix(a, rng, data_virt);
      break;
    case Shape::CondEdge:
      detail::gen_cond_edge(a, rng);
      break;
  }
  if (shape != Shape::BranchLadder) a.add(nullary(Op::Hlt));
  FuzzProgram out;
  out.bytes = a.assemble(code_virt);
  out.max_cycles = 20000;
  return out;
}

}  // namespace kfi::isa::fuzz
