// Unit tests for block chaining: link following, link severing through
// both invalidation paths (the injector's explicit invalidate_blocks()
// hint and the bare page-version bump), guest self-modifying code that
// rewrites an already-chained successor, cross-page fall-through chains
// and their TLB-fill determinism, exact cycle-limit stops mid-chain,
// and snapshot-restore severing (the checkpoint-rung case).
//
// The differential shapes live in the isa fuzz battery; these tests pin
// the *mechanism* — counters, cache slots, and the exact severing
// points — so a regression reports as "chain not severed" rather than
// "digest diverged somewhere".
#include "vm/cpu.h"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "../isa/program_fuzz.h"
#include "vm/hostmap.h"
#include "vm/snapshot.h"

namespace kfi::vm {
namespace {

using isa::Cond;
using isa::Instruction;
using isa::Op;
using isa::Reg;
using isa::fuzz::Asm;
using isa::fuzz::alu_rr;
using isa::fuzz::jcc;
using isa::fuzz::jmp;
using isa::fuzz::mem_op;
using isa::fuzz::mov_ri;
using isa::fuzz::nullary;
using isa::fuzz::unary;

constexpr std::uint32_t kCodeVirt = 0xC0105000;  // page-aligned
constexpr std::uint32_t kDataVirt = 0xC0200000;
constexpr std::uint32_t kHandlerVirt = 0xC0110000;

struct Rig {
  PhysicalMemory memory;
  Bus bus;
  Cpu cpu;

  explicit Rig(bool chained = true) : memory(kRamSize), cpu(memory, bus) {
    HostMapper mapper(memory, kBootPgdPhys, kKernelPtePhys);
    mapper.map_range(kKernelBase, 0, kRamSize, kPteWrite);
    cpu.mmu().set_cr3(kBootPgdPhys);
    memory.write32(kTssPhys, kBootStackTop);
    for (int v = 0; v < 32; ++v) cpu.set_vector(v, kHandlerVirt);
    cpu.set_vector(0x80, kHandlerVirt);
    cpu.set_vector(0x20, kHandlerVirt);
    memory.fill(phys_of_virt(kHandlerVirt), 64, 0xF4);
    cpu.set_reg(Reg::Esp, kBootStackTop);
    cpu.set_eip(kCodeVirt);
    cpu.set_chaining(chained);
  }

  void load(const std::vector<std::uint8_t>& bytes) {
    memory.write_block(phys_of_virt(kCodeVirt), bytes.data(),
                       static_cast<std::uint32_t>(bytes.size()));
  }

  // Drives run_block with step() fallback until a non-Executed event or
  // the cycle budget, exactly as Machine::run dispatches.
  CpuEvent run(std::uint64_t max_cycles) {
    CpuEvent event{};
    while (cpu.cycles() < max_cycles) {
      if (cpu.run_block(max_cycles - cpu.cycles(), nullptr, event) == 0) {
        event = cpu.step();
      }
      if (event.kind != CpuEventKind::Executed) break;
    }
    return event;
  }
};

// A countdown loop: mov ecx, n; top: add eax, ecx; dec ecx; jne top; hlt.
std::vector<std::uint8_t> loop_program(std::int32_t n) {
  Asm a;
  a.add(mov_ri(Reg::Ecx, n));
  const int top = a.next_index();
  a.add(alu_rr(Op::Add, Reg::Eax, Reg::Ecx));
  a.add(unary(Op::Dec, Reg::Ecx));
  a.branch(jcc(Cond::Ne), top);
  a.add(nullary(Op::Hlt));
  return a.assemble(kCodeVirt);
}

TEST(ChainEngine, LoopFollowsBackEdgeLinks) {
  Rig rig;
  rig.load(loop_program(50));
  const CpuEvent event = rig.run(1000);
  EXPECT_EQ(event.kind, CpuEventKind::Halted);
  EXPECT_EQ(rig.cpu.reg(Reg::Eax), 50u * 51u / 2u);
  // 50 iterations of one re-entered block: after the first pass the
  // back edge is a patched link followed without re-dispatch.
  EXPECT_GT(rig.cpu.chain_follows(), 40u);
  EXPECT_EQ(rig.cpu.block_fallbacks(), 0u);
}

TEST(ChainEngine, ChainingOffNeverFollows) {
  Rig rig(/*chained=*/false);
  rig.load(loop_program(50));
  const CpuEvent event = rig.run(1000);
  EXPECT_EQ(event.kind, CpuEventKind::Halted);
  EXPECT_EQ(rig.cpu.reg(Reg::Eax), 50u * 51u / 2u);
  EXPECT_EQ(rig.cpu.chain_follows(), 0u);
  EXPECT_EQ(rig.cpu.chain_breaks(), 0u);
}

// Two chained blocks; the successor's bytes change between runs.
// The head must end in a jcc — a direct jmp would be trace-widened
// into one block and never produce a chain edge.  Returns the program
// and the code offset of the successor's rewritten immediate.
std::vector<std::uint8_t> chained_pair_program(std::size_t& imm_off) {
  Asm a;
  a.add(mov_ri(Reg::Eax, 7));
  a.add(alu_rr(Op::Cmp, Reg::Eax, Reg::Eax));  // zf = 1
  const int hop = a.branch(jcc(Cond::E), 0);   // always taken
  a.add(nullary(Op::Hlt));                     // dead fall-through path
  a.set_target(hop, a.next_index());
  const int marker = a.add(mov_ri(Reg::Ebx, 1));
  a.add(nullary(Op::Hlt));
  std::vector<std::uint8_t> bytes = a.assemble(kCodeVirt);
  imm_off = a.offset_of(marker) + 1;  // one past the B8+r opcode
  EXPECT_EQ(bytes[a.offset_of(marker)],
            0xB8u + static_cast<unsigned>(Reg::Ebx));
  return bytes;
}

TEST(ChainEngine, InvalidateBlocksSeversChain) {
  Rig rig;
  std::size_t imm_off = 0;
  rig.load(chained_pair_program(imm_off));
  ASSERT_EQ(rig.run(100).kind, CpuEventKind::Halted);
  EXPECT_EQ(rig.cpu.reg(Reg::Ebx), 1u);
  EXPECT_GE(rig.cpu.chain_follows(), 1u);

  // Host-side flip in the chained successor, with the injector's
  // explicit invalidation hint (the Injector::run_one path).
  const std::uint32_t flip_phys =
      phys_of_virt(kCodeVirt) + static_cast<std::uint32_t>(imm_off);
  rig.memory.write8(flip_phys, 5);
  const std::uint64_t invalidations = rig.cpu.block_invalidations();
  rig.cpu.invalidate_blocks(flip_phys);
  EXPECT_GT(rig.cpu.block_invalidations(), invalidations);

  rig.cpu.reset_fault_state();
  rig.cpu.set_eip(kCodeVirt);
  ASSERT_EQ(rig.run(200).kind, CpuEventKind::Halted);
  EXPECT_EQ(rig.cpu.reg(Reg::Ebx), 5u) << "stale chained block executed";
}

TEST(ChainEngine, VersionBumpAloneSeversChain) {
  // No invalidate_blocks() call: the bare write8 version bump must be
  // enough, because every link follow re-validates the successor's
  // code-page version (fail-closed into a fresh lookup).
  Rig rig;
  std::size_t imm_off = 0;
  rig.load(chained_pair_program(imm_off));
  ASSERT_EQ(rig.run(100).kind, CpuEventKind::Halted);
  EXPECT_EQ(rig.cpu.reg(Reg::Ebx), 1u);

  rig.memory.write8(phys_of_virt(kCodeVirt) +
                        static_cast<std::uint32_t>(imm_off),
                    9);
  rig.cpu.reset_fault_state();
  rig.cpu.set_eip(kCodeVirt);
  ASSERT_EQ(rig.run(200).kind, CpuEventKind::Halted);
  EXPECT_EQ(rig.cpu.reg(Reg::Ebx), 9u) << "stale chained block executed";
}

TEST(ChainEngine, GuestSmcRewritesChainedTarget) {
  // The guest itself rewrites the chained successor's immediate on each
  // trip around a loop: head (store) -> jmp -> marker -> jne head.
  // Differential against the stepper — the canonical SMC contract.
  Asm a;
  a.add(mov_ri(Reg::Edi, 3));  // three iterations
  const int outer = a.next_index();
  a.add(mov_ri(Reg::Eax, 0x40));
  a.add(alu_rr(Op::Add, Reg::Eax, Reg::Edi));
  const int store = a.addr_imm(mov_ri(Reg::Ecx, 0), 0, 0);
  a.add(mem_op(Op::Mov, Reg::Eax, Reg::Ecx, 0, false));
  const int hop = a.branch(jmp(), 0);
  a.set_target(hop, a.next_index());
  const int marker = a.add(mov_ri(Reg::Ebx, 0));
  a.set_imm_target(store, marker, 1);
  a.add(alu_rr(Op::Add, Reg::Esi, Reg::Ebx));
  a.add(unary(Op::Dec, Reg::Edi));
  a.branch(jcc(Cond::Ne), outer);
  a.add(nullary(Op::Hlt));
  const std::vector<std::uint8_t> program = a.assemble(kCodeVirt);
  ASSERT_FALSE(program.empty());

  Rig stepper(/*chained=*/false), chained;
  stepper.load(program);
  chained.load(program);
  CpuEvent event{};
  while (stepper.cpu.cycles() < 500 &&
         (event = stepper.cpu.step()).kind == CpuEventKind::Executed) {
  }
  ASSERT_EQ(event.kind, CpuEventKind::Halted);
  ASSERT_EQ(chained.run(500).kind, CpuEventKind::Halted);

  EXPECT_EQ(chained.cpu.reg(Reg::Esi), stepper.cpu.reg(Reg::Esi));
  EXPECT_EQ(chained.cpu.reg(Reg::Ebx), stepper.cpu.reg(Reg::Ebx));
  EXPECT_EQ(chained.cpu.cycles(), stepper.cpu.cycles());
  // esi = sum of (0x40 + edi) for edi = 3,2,1.
  EXPECT_EQ(chained.cpu.reg(Reg::Esi), 3u * 0x40u + 6u);
  EXPECT_GE(chained.cpu.block_invalidations() + chained.cpu.chain_breaks(),
            1u);
}

TEST(ChainEngine, CrossPageFallthroughChainsWithIdenticalTlbFills) {
  // A nop sled runs off the end of the code page; cap-ended blocks
  // chain via fall-through, so the chain crosses into the next page.
  // Both engines must end bit-identical AND with the same MMU epoch:
  // the chained engine's inline translate cache may only skip
  // translations that are provably TLB hits, so the fill history —
  // which the epoch counts — cannot diverge from the stepper's.
  Asm a;
  a.add(mov_ri(Reg::Eax, 0x1000));
  a.pad_to_page();
  a.add(mov_ri(Reg::Ebx, 0x2000));  // first instruction on page two
  a.add(alu_rr(Op::Add, Reg::Eax, Reg::Ebx));
  a.add(nullary(Op::Hlt));
  const std::vector<std::uint8_t> program = a.assemble(kCodeVirt);
  ASSERT_GT(program.size(), static_cast<std::size_t>(kPageSize));

  Rig stepper(/*chained=*/false), chained;
  stepper.load(program);
  chained.load(program);
  CpuEvent event{};
  while (stepper.cpu.cycles() < 3 * kPageSize &&
         (event = stepper.cpu.step()).kind == CpuEventKind::Executed) {
  }
  ASSERT_EQ(event.kind, CpuEventKind::Halted);
  ASSERT_EQ(chained.run(3 * kPageSize).kind, CpuEventKind::Halted);

  EXPECT_EQ(chained.cpu.reg(Reg::Eax), 0x3000u);
  EXPECT_EQ(chained.cpu.eip(), stepper.cpu.eip());
  EXPECT_EQ(chained.cpu.cycles(), stepper.cpu.cycles());
  EXPECT_GE(chained.cpu.chain_follows(), 1u);
  EXPECT_EQ(chained.cpu.mmu().epoch(), stepper.cpu.mmu().epoch())
      << "TLB fill history diverged between engines";
}

TEST(ChainEngine, CycleLimitStopsExactlyMidChain) {
  // The budget expires in the middle of a followed chain: run_block
  // must retire exactly max_instructions so timer ticks, deadlines, and
  // checkpoint rungs land on the same cycle as the stepper's loop top.
  Rig rig;
  rig.load(loop_program(50));  // 1 setup op + 3-op loop body
  CpuEvent event{};
  const std::size_t n = rig.cpu.run_block(14, nullptr, event);
  EXPECT_EQ(n, 14u);
  EXPECT_EQ(rig.cpu.cycles(), 14u);
  // 14 = setup + 4 full iterations + dangling add: eip sits at dec.
  EXPECT_GT(rig.cpu.chain_follows(), 0u);
  Rig stepper(/*chained=*/false);
  stepper.load(loop_program(50));
  for (int i = 0; i < 14; ++i) stepper.cpu.step();
  EXPECT_EQ(rig.cpu.eip(), stepper.cpu.eip());
  EXPECT_EQ(rig.cpu.reg(Reg::Eax), stepper.cpu.reg(Reg::Eax));
  EXPECT_EQ(rig.cpu.reg(Reg::Ecx), stepper.cpu.reg(Reg::Ecx));
}

TEST(ChainEngine, SnapshotRestoreSeversChains) {
  // The checkpoint-rung case: restore_pages bumps the versions of every
  // page it copies back, so blocks (and the links into them) cached
  // before the restore never execute stale bytes afterwards.
  Rig rig;
  rig.load(loop_program(20));
  ChunkedSnapshot snap = rig.memory.snapshot_pages();
  std::vector<std::uint64_t> memo;

  ASSERT_EQ(rig.run(200).kind, CpuEventKind::Halted);
  const std::uint32_t eax_first = rig.cpu.reg(Reg::Eax);
  EXPECT_GT(rig.cpu.chain_follows(), 10u);

  // Rewind RAM to the rung and patch the loop bound before re-running:
  // the rebuilt chain must see the patched byte, not the cached 20.
  rig.memory.restore_pages(snap, memo);
  rig.memory.write8(phys_of_virt(kCodeVirt) + 1, 10);  // mov ecx, 10
  rig.cpu.reset_fault_state();
  rig.cpu.set_reg(Reg::Eax, 0);
  rig.cpu.set_eip(kCodeVirt);
  ASSERT_EQ(rig.run(400).kind, CpuEventKind::Halted);
  EXPECT_EQ(rig.cpu.reg(Reg::Eax), 10u * 11u / 2u);
  EXPECT_NE(rig.cpu.reg(Reg::Eax), eax_first);
}

}  // namespace
}  // namespace kfi::vm
