// Unit tests for the memfast data-side D-TLB: fill/hit/upgrade counter
// mechanics, fail-closed invalidation on every event that can change a
// translation (MMU epoch bumps from cr3 loads and TLB flushes,
// snapshot/checkpoint restores, engine toggles), guest self-modifying
// code reached through a D-TLB-cached pointer, and the page-crossing
// 32-bit fast path (one translate per page, bytes split across the
// boundary exactly as the stepper splits them).
//
// The engine-identity proof lives in the isa fuzz battery (the memfast
// rig) and the machine-level exec_engine tests; these tests pin the
// *mechanism* — which accesses miss, which hit, and which events force
// a re-fill — so a regression reports as "restore did not drop the
// D-TLB" rather than "digest diverged somewhere".
#include "vm/cpu.h"

#include <gtest/gtest.h>

#include <vector>

#include "../isa/program_fuzz.h"
#include "vm/hostmap.h"
#include "vm/snapshot.h"

namespace kfi::vm {
namespace {

using isa::Cond;
using isa::Op;
using isa::Reg;
using isa::fuzz::Asm;
using isa::fuzz::alu_rr;
using isa::fuzz::jcc;
using isa::fuzz::mem_op;
using isa::fuzz::mov_ri;
using isa::fuzz::nullary;
using isa::fuzz::unary;

constexpr std::uint32_t kCodeVirt = 0xC0105000;  // page-aligned
constexpr std::uint32_t kDataVirt = 0xC0200000;
constexpr std::uint32_t kHandlerVirt = 0xC0110000;

struct Rig {
  PhysicalMemory memory;
  Bus bus;
  Cpu cpu;

  explicit Rig(bool memfast = true) : memory(kRamSize), cpu(memory, bus) {
    HostMapper mapper(memory, kBootPgdPhys, kKernelPtePhys);
    mapper.map_range(kKernelBase, 0, kRamSize, kPteWrite);
    cpu.mmu().set_cr3(kBootPgdPhys);
    memory.write32(kTssPhys, kBootStackTop);
    for (int v = 0; v < 32; ++v) cpu.set_vector(v, kHandlerVirt);
    cpu.set_vector(0x80, kHandlerVirt);
    cpu.set_vector(0x20, kHandlerVirt);
    memory.fill(phys_of_virt(kHandlerVirt), 64, 0xF4);
    cpu.set_reg(Reg::Esp, kBootStackTop);
    cpu.set_eip(kCodeVirt);
    cpu.set_chaining(memfast);
    cpu.set_threaded(memfast);
    cpu.set_memfast(memfast);
  }

  void load(const std::vector<std::uint8_t>& bytes) {
    memory.write_block(phys_of_virt(kCodeVirt), bytes.data(),
                       static_cast<std::uint32_t>(bytes.size()));
  }

  CpuEvent run(std::uint64_t max_cycles) {
    CpuEvent event{};
    while (cpu.cycles() < max_cycles) {
      if (cpu.run_block(max_cycles - cpu.cycles(), nullptr, event) == 0) {
        event = cpu.step();
      }
      if (event.kind != CpuEventKind::Executed) break;
    }
    return event;
  }
};

// mov esi, data; n x { store/load [esi] }; hlt — every data access after
// the first lands on the same page.
std::vector<std::uint8_t> same_page_program(int accesses) {
  Asm a;
  a.add(mov_ri(Reg::Esi, static_cast<std::int32_t>(kDataVirt)));
  a.add(mov_ri(Reg::Eax, 0x1234));
  for (int i = 0; i < accesses; ++i) {
    a.add(mem_op(Op::Mov, Reg::Eax, Reg::Esi,
                 4 * (i % 8), /*load=*/i % 2 != 0));
  }
  a.add(nullary(Op::Hlt));
  return a.assemble(kCodeVirt);
}

TEST(Dtlb, FillHitAndWriteUpgradeCounters) {
  // Exact per-access accounting, driven by step() so nothing but the
  // five data accesses touches read_v/write_v: a read fill does not
  // grant write permission, so the first store re-translates (upgrade
  // miss) even though the read already cached the page.
  Asm a;
  a.add(mov_ri(Reg::Esi, static_cast<std::int32_t>(kDataVirt)));
  a.add(mem_op(Op::Mov, Reg::Eax, Reg::Esi, 0, /*load=*/true));   // miss
  a.add(mem_op(Op::Mov, Reg::Ebx, Reg::Esi, 4, /*load=*/true));   // hit
  a.add(mem_op(Op::Mov, Reg::Eax, Reg::Esi, 0, /*load=*/false));  // miss
  a.add(mem_op(Op::Mov, Reg::Eax, Reg::Esi, 4, /*load=*/false));  // hit
  a.add(mem_op(Op::Mov, Reg::Ecx, Reg::Esi, 0, /*load=*/true));   // hit
  a.add(nullary(Op::Hlt));
  Rig rig;
  rig.load(a.assemble(kCodeVirt));
  CpuEvent event{};
  do {
    event = rig.cpu.step();
  } while (event.kind == CpuEventKind::Executed);
  EXPECT_EQ(event.kind, CpuEventKind::Halted);
  EXPECT_EQ(rig.cpu.dtlb_misses(), 2u);
  EXPECT_EQ(rig.cpu.dtlb_hits(), 3u);
}

TEST(Dtlb, MemfastMatchesStepperAndHitsDtlb) {
  Rig fast(/*memfast=*/true);
  Rig step(/*memfast=*/false);
  step.cpu.set_chaining(false);
  step.cpu.set_threaded(false);
  const auto program = same_page_program(24);
  fast.load(program);
  step.load(program);
  EXPECT_EQ(fast.run(1000).kind, CpuEventKind::Halted);
  CpuEvent event{};
  do {
    event = step.cpu.step();
  } while (event.kind == CpuEventKind::Executed);
  EXPECT_EQ(event.kind, CpuEventKind::Halted);
  for (int r = 0; r < isa::kRegCount; ++r) {
    EXPECT_EQ(fast.cpu.reg(static_cast<Reg>(r)),
              step.cpu.reg(static_cast<Reg>(r)))
        << "reg " << r;
  }
  EXPECT_EQ(fast.cpu.cycles(), step.cpu.cycles());
  EXPECT_GT(fast.cpu.dtlb_hits(), 0u);
  EXPECT_EQ(step.cpu.dtlb_hits(), 0u);
  EXPECT_EQ(step.cpu.dtlb_misses(), 0u);
}

TEST(Dtlb, SnapshotRestoreForcesRefill) {
  // A checkpoint-rung restore rewrites RAM from a snapshot and reloads
  // cr3; the cr3 load flushes the I-TLB and bumps the MMU epoch, which
  // must also strand every D-TLB entry — a hit after restore could
  // otherwise read through a translation the restored page tables no
  // longer contain.
  Rig rig;
  rig.load(same_page_program(16));
  const ChunkedSnapshot snap = rig.memory.snapshot_pages();
  EXPECT_EQ(rig.run(1000).kind, CpuEventKind::Halted);
  EXPECT_GT(rig.cpu.dtlb_hits(), 0u);
  const std::uint64_t misses_before = rig.cpu.dtlb_misses();

  std::vector<std::uint64_t> memo;
  rig.memory.restore_pages(snap, memo);
  rig.cpu.mmu().set_cr3(kBootPgdPhys);  // what every restore path does
  rig.cpu.set_eip(kCodeVirt);
  rig.cpu.set_halted(false);
  EXPECT_EQ(rig.run(2000).kind, CpuEventKind::Halted);
  // The first post-restore access cannot be served from the D-TLB.
  EXPECT_GT(rig.cpu.dtlb_misses(), misses_before);
}

TEST(Dtlb, EngineToggleDropsDtlb) {
  Rig rig;
  rig.load(same_page_program(16));
  EXPECT_EQ(rig.run(1000).kind, CpuEventKind::Halted);
  const std::uint64_t misses_before = rig.cpu.dtlb_misses();

  // Flipping memfast off and back on (the exec-engine toggle) must
  // drop the D-TLB outright: entries cached under the old mode carry
  // no validity story across the flip.
  rig.cpu.set_memfast(false);
  rig.cpu.set_memfast(true);
  rig.cpu.set_eip(kCodeVirt);
  rig.cpu.set_halted(false);
  EXPECT_EQ(rig.run(2000).kind, CpuEventKind::Halted);
  EXPECT_GT(rig.cpu.dtlb_misses(), misses_before);
}

TEST(Dtlb, GuestSmcThroughCachedPointerReDecodes) {
  // The store's target page is D-TLB-cached by an earlier store, and
  // the target is the imm32 of an instruction later in the SAME
  // widened trace: the D-TLB fast path must still bump the page
  // version, and the SMC gate after the store must hand control back
  // so the rewritten bytes are re-decoded — exactly what the stepper
  // does.
  Asm a;
  a.add(mov_ri(Reg::Eax, static_cast<std::int32_t>(0xAABBCCDD)));
  const int ptr = a.addr_imm(mov_ri(Reg::Esi, 0), 0, 0);  // re-aimed below
  a.add(mem_op(Op::Mov, Reg::Eax, Reg::Esi, 0, /*load=*/false));  // warm
  a.add(mem_op(Op::Mov, Reg::Eax, Reg::Esi, 0, /*load=*/false));  // rewrite
  const int marker = a.add(mov_ri(Reg::Ebx, 0x11111111));
  a.set_imm_target(ptr, marker, 1);  // &imm32 of the marker mov
  a.add(nullary(Op::Hlt));

  Rig fast(/*memfast=*/true);
  Rig step(/*memfast=*/false);
  step.cpu.set_chaining(false);
  step.cpu.set_threaded(false);
  const auto program = a.assemble(kCodeVirt);
  ASSERT_FALSE(program.empty());
  fast.load(program);
  step.load(program);
  EXPECT_EQ(fast.run(1000).kind, CpuEventKind::Halted);
  CpuEvent event{};
  do {
    event = step.cpu.step();
  } while (event.kind == CpuEventKind::Executed);
  EXPECT_EQ(event.kind, CpuEventKind::Halted);
  EXPECT_EQ(step.cpu.reg(Reg::Ebx), 0xAABBCCDDu) << "stepper baseline";
  EXPECT_EQ(fast.cpu.reg(Reg::Ebx), 0xAABBCCDDu)
      << "memfast ran the stale predecoded marker";
  EXPECT_EQ(fast.cpu.cycles(), step.cpu.cycles());
}

TEST(Dtlb, PageCrossingAccessMatchesStepper) {
  // 32-bit store + loads straddling a page boundary: the fast path
  // translates once per page (not per byte) but must leave the same
  // bytes on both pages, the same registers, and the same D-TLB state
  // as four byte-wise accesses would.
  for (const std::uint32_t off : {0xFFDu, 0xFFEu, 0xFFFu}) {
    SCOPED_TRACE(off);
    Asm a;
    a.add(mov_ri(Reg::Esi, static_cast<std::int32_t>(kDataVirt + off)));
    a.add(mov_ri(Reg::Eax, static_cast<std::int32_t>(0x44332211)));
    a.add(mem_op(Op::Mov, Reg::Eax, Reg::Esi, 0, /*load=*/false));
    a.add(mem_op(Op::Mov, Reg::Ebx, Reg::Esi, 0, /*load=*/true));
    a.add(mem_op(Op::Mov, Reg::Ecx, Reg::Esi, -8, /*load=*/true));
    a.add(nullary(Op::Hlt));
    const auto program = a.assemble(kCodeVirt);

    Rig fast(/*memfast=*/true);
    Rig step(/*memfast=*/false);
    step.cpu.set_chaining(false);
    step.cpu.set_threaded(false);
    fast.load(program);
    step.load(program);
    EXPECT_EQ(fast.run(1000).kind, CpuEventKind::Halted);
    CpuEvent event{};
    do {
      event = step.cpu.step();
    } while (event.kind == CpuEventKind::Executed);
    EXPECT_EQ(event.kind, CpuEventKind::Halted);
    EXPECT_EQ(fast.cpu.reg(Reg::Ebx), 0x44332211u);
    EXPECT_EQ(step.cpu.reg(Reg::Ebx), 0x44332211u);
    EXPECT_EQ(fast.cpu.reg(Reg::Ecx), step.cpu.reg(Reg::Ecx));
    // Byte-identical split across the boundary in both machines.
    for (std::uint32_t i = 0; i < 4; ++i) {
      EXPECT_EQ(fast.memory.read8(phys_of_virt(kDataVirt + off + i)),
                step.memory.read8(phys_of_virt(kDataVirt + off + i)))
          << "byte " << i;
    }
    EXPECT_EQ(fast.memory.read8(phys_of_virt(kDataVirt + off)), 0x11u);
    EXPECT_EQ(fast.memory.read8(phys_of_virt(kDataVirt + off + 3)), 0x44u);
  }
}

}  // namespace
}  // namespace kfi::vm
