// MMIO bus and host page-table mapper unit tests.
#include "vm/bus.h"

#include <gtest/gtest.h>

#include "vm/hostmap.h"
#include "vm/mmu.h"
#include "vm/layout.h"

namespace kfi::vm {
namespace {

class RecordingDevice : public Device {
 public:
  explicit RecordingDevice(std::uint32_t tag) : tag_(tag) {}
  std::uint32_t mmio_read(std::uint32_t offset) override {
    last_read = offset;
    return tag_ + offset;
  }
  void mmio_write(std::uint32_t offset, std::uint32_t value) override {
    last_write_offset = offset;
    last_write_value = value;
  }
  std::uint32_t last_read = 0xFFFFFFFF;
  std::uint32_t last_write_offset = 0xFFFFFFFF;
  std::uint32_t last_write_value = 0;

 private:
  std::uint32_t tag_;
};

TEST(Bus, DispatchesToTheRightDevice) {
  Bus bus;
  RecordingDevice a(0x1000);
  RecordingDevice b(0x2000);
  bus.attach(0xFF000000, kPageSize, &a);
  bus.attach(0xFF001000, kPageSize, &b);

  std::uint32_t value = 0;
  ASSERT_TRUE(bus.read32(0xFF000010, value));
  EXPECT_EQ(value, 0x1010u);
  EXPECT_EQ(a.last_read, 0x10u);

  ASSERT_TRUE(bus.write32(0xFF001004, 77));
  EXPECT_EQ(b.last_write_offset, 4u);
  EXPECT_EQ(b.last_write_value, 77u);
  EXPECT_EQ(a.last_write_offset, 0xFFFFFFFFu) << "a must not see b's write";
}

TEST(Bus, UnclaimedAddressFails) {
  Bus bus;
  RecordingDevice a(0);
  bus.attach(0xFF000000, kPageSize, &a);
  std::uint32_t value = 0;
  EXPECT_FALSE(bus.read32(0xFF005000, value));
  EXPECT_FALSE(bus.write32(0xFF005000, 1));
}

TEST(Bus, RangeBoundariesAreExclusive) {
  Bus bus;
  RecordingDevice a(0);
  bus.attach(0xFF000000, kPageSize, &a);
  std::uint32_t value = 0;
  EXPECT_TRUE(bus.read32(0xFF000FFC, value));
  EXPECT_FALSE(bus.read32(0xFF001000, value));
}

TEST(HostMapper, BuildsTwoLevelTables) {
  PhysicalMemory memory(kRamSize);
  HostMapper mapper(memory, kBootPgdPhys, kKernelPtePhys);
  mapper.map(0x08048000, 0x00300000, kPteUser | kPteWrite);

  const std::uint32_t pgd_entry =
      memory.read32(kBootPgdPhys + (0x08048000u >> 22) * 4);
  EXPECT_TRUE(pgd_entry & kPtePresent);
  const std::uint32_t pte =
      memory.read32((pgd_entry & kPteFrameMask) +
                    ((0x08048000u >> 12) & 0x3FF) * 4);
  EXPECT_EQ(pte & kPteFrameMask, 0x00300000u);
  EXPECT_TRUE(pte & kPtePresent);
  EXPECT_TRUE(pte & kPteUser);
  EXPECT_TRUE(pte & kPteWrite);
}

TEST(HostMapper, ReusesPteTableWithinSameRegion) {
  PhysicalMemory memory(kRamSize);
  HostMapper mapper(memory, kBootPgdPhys, kKernelPtePhys);
  const std::uint32_t before = mapper.cursor();
  mapper.map(0x08048000, 0x00300000, kPteUser);
  mapper.map(0x08049000, 0x00301000, kPteUser);  // same 4 MiB region
  EXPECT_EQ(mapper.cursor(), before + kPageSize) << "one PTE page suffices";
  mapper.map(0x08400000, 0x00302000, kPteUser);  // next region
  EXPECT_EQ(mapper.cursor(), before + 2 * kPageSize);
}

TEST(HostMapper, MapRangeCoversEveryPage) {
  PhysicalMemory memory(kRamSize);
  HostMapper mapper(memory, kBootPgdPhys, kKernelPtePhys);
  mapper.map_range(0xC0000000, 0, 16 * kPageSize, kPteWrite);
  Mmu mmu(memory);
  mmu.set_cr3(kBootPgdPhys);
  for (std::uint32_t off = 0; off < 16 * kPageSize; off += kPageSize) {
    std::uint32_t paddr = 0;
    EXPECT_EQ(mmu.translate(0xC0000000 + off, Access::Write, 0, paddr),
              TranslateStatus::Ok);
    EXPECT_EQ(paddr, off);
  }
}

}  // namespace
}  // namespace kfi::vm
