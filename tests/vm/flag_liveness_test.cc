// Unit and differential tests for the flag-liveness analysis behind the
// direct-threaded engine's dead-flag elision (isa/flags_meta and
// Cpu::thread_block).
//
// The differential fuzz battery proves the elision is invisible at
// scale; these tests pin the *mechanism* — per-opcode flag effects,
// the backward liveness masks on hand-built sequences, the boundary
// conservatism rules (trap-capable ops, guard boundaries, chain edges,
// armed breakpoints), and the exact per-op elision masks the cpu
// derives for a real block — so a regression reports as "wrong mask at
// op 3" rather than "digest diverged somewhere".
#include "isa/flags_meta.h"

#include <gtest/gtest.h>

#include <vector>

#include "../isa/program_fuzz.h"
#include "vm/cpu.h"
#include "vm/hostmap.h"
#include "vm/snapshot.h"

namespace kfi::vm {
namespace {

using isa::Cond;
using isa::FlagEffects;
using isa::Flags;
using isa::Instruction;
using isa::kFlagAll;
using isa::kFlagCF;
using isa::kFlagOF;
using isa::kFlagPF;
using isa::kFlagSF;
using isa::kFlagZF;
using isa::LiveOp;
using isa::Op;
using isa::Reg;
using isa::fuzz::Asm;
using isa::fuzz::alu_rr;
using isa::fuzz::jcc;
using isa::fuzz::mem_op;
using isa::fuzz::mov_ri;
using isa::fuzz::nullary;
using isa::fuzz::unary;

constexpr std::uint32_t kCodeVirt = 0xC0105000;  // page-aligned
constexpr std::uint32_t kDataVirt = 0xC0200000;
constexpr std::uint32_t kHandlerVirt = 0xC0110000;

// --- flag_effects: the per-opcode metadata must match the executor ----

FlagEffects fx_of(Op op) {
  Instruction in;
  in.op = op;
  in.dst = isa::Operand::make_reg(Reg::Eax);
  in.src = isa::Operand::make_reg(Reg::Ecx);
  return isa::flag_effects(in);
}

TEST(FlagEffects, PinnedPerOpcode) {
  for (const Op op : {Op::Add, Op::Sub, Op::Cmp, Op::Or, Op::And, Op::Xor,
                      Op::Test}) {
    const FlagEffects fx = fx_of(op);
    EXPECT_EQ(fx.writes, kFlagAll) << isa::op_name(op);
    EXPECT_EQ(fx.kills, kFlagAll) << isa::op_name(op);
    EXPECT_EQ(fx.reads, 0) << isa::op_name(op);
    EXPECT_FALSE(fx.may_trap) << isa::op_name(op);
  }
  // Inc/Dec preserve CF: a partial kill, the case the masks exist for.
  for (const Op op : {Op::Inc, Op::Dec}) {
    const FlagEffects fx = fx_of(op);
    EXPECT_EQ(fx.writes, kFlagPF | kFlagZF | kFlagSF | kFlagOF);
    EXPECT_EQ(fx.kills, fx.writes);
  }
  EXPECT_EQ(fx_of(Op::Mul).writes, kFlagCF | kFlagZF | kFlagSF | kFlagOF);
  EXPECT_EQ(fx_of(Op::Imul).writes, kFlagCF | kFlagOF);
  EXPECT_EQ(fx_of(Op::Mov).writes, 0);
  EXPECT_EQ(fx_of(Op::Not).writes, 0);
  // Division writes nothing but can always raise #DE: never elidable,
  // always a liveness boundary.
  EXPECT_TRUE(fx_of(Op::Div).may_trap);
  EXPECT_TRUE(fx_of(Op::Idiv).may_trap);
  // Stack ops trap on stack faults; iret additionally restores the
  // whole flag word from the frame.
  EXPECT_TRUE(fx_of(Op::Push).may_trap);
  EXPECT_TRUE(fx_of(Op::Ret).may_trap);
  EXPECT_TRUE(fx_of(Op::Iret).may_trap);
  EXPECT_EQ(fx_of(Op::Iret).writes, kFlagAll);
  EXPECT_TRUE(fx_of(Op::Sti).may_trap);
  EXPECT_TRUE(fx_of(Op::Int).may_trap);
  EXPECT_TRUE(fx_of(Op::Ud2).may_trap);
  // Any memory operand can fault mid-instruction.
  Instruction load = mem_op(Op::Mov, Reg::Eax, Reg::Esi, 0, /*load=*/true);
  EXPECT_TRUE(isa::flag_effects(load).may_trap);
}

TEST(FlagEffects, ShiftCountDisambiguation) {
  Instruction sh;
  sh.op = Op::Shl;
  sh.dst = isa::Operand::make_reg(Reg::Eax);
  sh.src = isa::Operand::make_imm(0);
  EXPECT_EQ(isa::flag_effects(sh).writes, 0);  // shift by 0: no flags
  sh.src = isa::Operand::make_imm(1);
  EXPECT_EQ(isa::flag_effects(sh).writes, kFlagAll);  // count 1 writes OF
  sh.src = isa::Operand::make_imm(4);
  EXPECT_EQ(isa::flag_effects(sh).writes,
            kFlagCF | kFlagPF | kFlagZF | kFlagSF);  // OF only at count 1
}

// cond_flags must name a superset of the flags cond_holds actually
// reads: toggling any bit outside the mask can never change the
// verdict.  Exhaustive over all 16 conditions x 32 flag states.
TEST(FlagEffects, CondFlagsCoversCondHolds) {
  const auto flags_from_mask = [](std::uint8_t m) {
    Flags f;
    f.cf = m & kFlagCF;
    f.pf = m & kFlagPF;
    f.zf = m & kFlagZF;
    f.sf = m & kFlagSF;
    f.of = m & kFlagOF;
    return f;
  };
  for (int c = 0; c < 16; ++c) {
    const Cond cond = static_cast<Cond>(c);
    const std::uint8_t mask = isa::cond_flags(cond);
    for (std::uint8_t m = 0; m < 32; ++m) {
      for (int bit = 0; bit < 5; ++bit) {
        const std::uint8_t toggled =
            static_cast<std::uint8_t>(m ^ (1u << bit));
        if (((1u << bit) & mask) != 0) continue;
        EXPECT_EQ(isa::cond_holds(cond, flags_from_mask(m)),
                  isa::cond_holds(cond, flags_from_mask(toggled)))
            << "cond " << c << " reads flag bit " << bit
            << " outside its declared mask";
      }
    }
  }
}

// --- flag_liveness: pinned masks on hand-built sequences -------------

LiveOp plain(Op op) { return {fx_of(op), /*boundary=*/false}; }

TEST(FlagLiveness, SequenceEndIsFullyLive) {
  // Chain edges and terminators sit past the last op, where everything
  // is observable: a lone ALU op is never elidable.
  const isa::Liveness lv = isa::flag_liveness({plain(Op::Add)});
  EXPECT_EQ(lv.live_after[0], kFlagAll);
  EXPECT_EQ(lv.elidable[0], 0);
}

TEST(FlagLiveness, BackToBackKillsElideTheEarlierWrite) {
  const isa::Liveness lv =
      isa::flag_liveness({plain(Op::Add), plain(Op::Sub), plain(Op::Cmp)});
  EXPECT_EQ(lv.elidable[0], kFlagAll);
  EXPECT_EQ(lv.elidable[1], kFlagAll);
  EXPECT_EQ(lv.elidable[2], 0);  // last writer feeds the trace end
  EXPECT_EQ(lv.live_after[0], 0);
  EXPECT_EQ(lv.live_after[2], kFlagAll);
}

TEST(FlagLiveness, PartialKillKeepsCarryAlive) {
  // add; inc; jb; cmp — inc does not kill CF, so the add's CF write
  // flows through it into the branch and the add cannot be elided
  // (elision is all-or-nothing per handler variant, so one live bit
  // pins the whole write).  The inc's own PF/ZF/SF/OF are dead — the
  // branch reads only CF — so the inc still elides.
  Instruction br;
  br.op = Op::Jcc;
  br.cond = Cond::B;  // reads CF
  const isa::Liveness lv = isa::flag_liveness(
      {plain(Op::Add), plain(Op::Inc), {isa::flag_effects(br), false},
       plain(Op::Cmp)});
  EXPECT_EQ(lv.live_after[0] & kFlagCF, kFlagCF);
  EXPECT_EQ(lv.elidable[0], 0);
  EXPECT_EQ(lv.elidable[1], kFlagPF | kFlagZF | kFlagSF | kFlagOF);
  // Without the CF reader, the cmp's full kill makes both dead.
  const isa::Liveness lv2 =
      isa::flag_liveness({plain(Op::Add), plain(Op::Inc), plain(Op::Cmp)});
  EXPECT_EQ(lv2.elidable[0], kFlagAll);
  EXPECT_EQ(lv2.elidable[1], kFlagPF | kFlagZF | kFlagSF | kFlagOF);
}

TEST(FlagLiveness, ReaderKeepsExactlyItsFlagsLive) {
  // add; jcc(e) — the branch reads ZF only, but the add writes all
  // five, so the write is not elidable; live_after names just ZF plus
  // whatever the trace end needs (the jcc is the last op here, so its
  // own position is fully live).
  Instruction br;
  br.op = Op::Jcc;
  br.cond = Cond::E;
  const isa::Liveness lv = isa::flag_liveness(
      {plain(Op::Add), {isa::flag_effects(br), false}, plain(Op::Cmp)});
  EXPECT_EQ(lv.live_after[0] & kFlagZF, kFlagZF);
  EXPECT_EQ(lv.elidable[0], 0);
}

TEST(FlagLiveness, BoundaryForcesFullLivenessBehindIt) {
  // add; mov(guard boundary); sub — without the boundary the add would
  // be dead; with it, execution may resume in the stepper before the
  // mov, so the add's flags must be architecturally visible.
  std::vector<LiveOp> ops = {plain(Op::Add), plain(Op::Mov), plain(Op::Sub)};
  isa::Liveness lv = isa::flag_liveness(ops);
  EXPECT_EQ(lv.elidable[0], kFlagAll);
  ops[1].boundary = true;
  lv = isa::flag_liveness(ops);
  EXPECT_EQ(lv.live_after[0], kFlagAll);
  EXPECT_EQ(lv.elidable[0], 0);
}

TEST(FlagLiveness, TrapCapableOpsAreBoundariesAndNeverElidable) {
  // add; push; sub — push writes no flags but can fault into a trap
  // frame that pushes the whole flag word: the add must stay exact.
  const isa::Liveness lv =
      isa::flag_liveness({plain(Op::Add), plain(Op::Push), plain(Op::Sub)});
  EXPECT_EQ(lv.live_after[0], kFlagAll);
  EXPECT_EQ(lv.elidable[0], 0);
  EXPECT_EQ(lv.elidable[1], 0);
  // Same for sti (pending-interrupt window) and iret (frame pop): both
  // may_trap, so nothing before them is ever elided.
  const isa::Liveness lv2 =
      isa::flag_liveness({plain(Op::Add), plain(Op::Sti)});
  EXPECT_EQ(lv2.elidable[0], 0);
  const isa::Liveness lv3 =
      isa::flag_liveness({plain(Op::Add), plain(Op::Iret)});
  EXPECT_EQ(lv3.elidable[0], 0);
}

// --- Cpu::thread_block: masks derived for a real cached trace --------

struct Rig {
  PhysicalMemory memory;
  Bus bus;
  Cpu cpu;

  explicit Rig(bool threaded = true) : memory(kRamSize), cpu(memory, bus) {
    HostMapper mapper(memory, kBootPgdPhys, kKernelPtePhys);
    mapper.map_range(kKernelBase, 0, kRamSize, kPteWrite);
    cpu.mmu().set_cr3(kBootPgdPhys);
    memory.write32(kTssPhys, kBootStackTop);
    for (int v = 0; v < 32; ++v) cpu.set_vector(v, kHandlerVirt);
    cpu.set_vector(0x80, kHandlerVirt);
    cpu.set_vector(0x20, kHandlerVirt);
    memory.fill(phys_of_virt(kHandlerVirt), 64, 0xF4);
    cpu.set_reg(Reg::Esp, kBootStackTop);
    cpu.set_eip(kCodeVirt);
    cpu.set_chaining(threaded);
    cpu.set_threaded(threaded);
  }

  void load(const std::vector<std::uint8_t>& bytes) {
    memory.write_block(phys_of_virt(kCodeVirt), bytes.data(),
                       static_cast<std::uint32_t>(bytes.size()));
  }

  CpuEvent run(std::uint64_t max_cycles) {
    CpuEvent event{};
    while (cpu.cycles() < max_cycles) {
      if (cpu.run_block(max_cycles - cpu.cycles(), nullptr, event) == 0) {
        event = cpu.step();
      }
      if (event.kind != CpuEventKind::Executed) break;
    }
    return event;
  }

  CpuEvent step_to_stop(std::uint64_t max_cycles) {
    CpuEvent event{};
    while (cpu.cycles() < max_cycles &&
           (event = cpu.step()).kind == CpuEventKind::Executed) {
    }
    return event;
  }
};

TEST(ThreadBlock, PinnedElisionMasksForStraightLineBlock) {
  // mov ecx,7; add eax,ecx; sub eax,ecx; inc ebx; cmp eax,ecx; hlt
  Asm a;
  a.add(mov_ri(Reg::Ecx, 7));
  a.add(alu_rr(Op::Add, Reg::Eax, Reg::Ecx));
  a.add(alu_rr(Op::Sub, Reg::Eax, Reg::Ecx));
  a.add(unary(Op::Inc, Reg::Ebx));
  a.add(alu_rr(Op::Cmp, Reg::Eax, Reg::Ecx));
  a.add(nullary(Op::Hlt));
  Rig rig;
  rig.load(a.assemble(kCodeVirt));
  ASSERT_EQ(rig.run(100).kind, CpuEventKind::Halted);

  const std::vector<std::uint8_t> masks =
      rig.cpu.block_elision_masks(kCodeVirt);
  ASSERT_GE(masks.size(), 5u);
  EXPECT_EQ(masks[0], 0);         // mov writes no flags
  EXPECT_EQ(masks[1], kFlagAll);  // add: dead into the sub's full kill
  EXPECT_EQ(masks[2], kFlagAll);  // sub: dead into inc + cmp
  EXPECT_EQ(masks[3], kFlagPF | kFlagZF | kFlagSF | kFlagOF);  // inc
  EXPECT_EQ(masks[4], 0);  // cmp feeds the hlt boundary: conservative
  EXPECT_GT(rig.cpu.flag_elisions(), 0u);
  EXPECT_GT(rig.cpu.threaded_ops(), 0u);
}

TEST(ThreadBlock, InTraceStoreGatesElisionAtTheNextOp) {
  // add; mov [esi],eax; add; sub; hlt — the store may trap (nothing
  // before it elides) and the op right after it is an SMC gate, a
  // liveness boundary where every earlier flag write is observable.
  // Past the gate, liveness resumes: the second add dies into the
  // sub's full kill and elides again.
  Asm a;
  a.add(mov_ri(Reg::Esi, static_cast<std::int32_t>(kDataVirt)));
  a.add(alu_rr(Op::Add, Reg::Eax, Reg::Ecx));
  a.add(mem_op(Op::Mov, Reg::Eax, Reg::Esi, 0, /*load=*/false));
  a.add(alu_rr(Op::Add, Reg::Ebx, Reg::Ecx));
  a.add(alu_rr(Op::Sub, Reg::Ebx, Reg::Ecx));
  a.add(nullary(Op::Hlt));
  Rig rig;
  rig.load(a.assemble(kCodeVirt));
  ASSERT_EQ(rig.run(100).kind, CpuEventKind::Halted);

  const std::vector<std::uint8_t> masks =
      rig.cpu.block_elision_masks(kCodeVirt);
  ASSERT_GE(masks.size(), 5u);
  EXPECT_EQ(masks[1], 0) << "flag write before a trap-capable store elided";
  EXPECT_EQ(masks[2], 0);
  // ops[3] (add) sits AT the gate; the gate exit lands before it, so
  // its own write is unaffected and dies into the sub's full kill.
  EXPECT_EQ(masks[3], kFlagAll) << "write past the SMC gate not elided";
  // ops[4] (sub) feeds the hlt end-of-trace boundary: conservative.
  EXPECT_EQ(masks[4], 0);
}

TEST(ThreadBlock, ArmedBreakpointRefusesThreadedDispatch) {
  // A debug breakpoint inside the block: run_block must refuse the
  // cached trace (single-step delivers the Breakpoint event), so no
  // elided handler can ever run over a breakpoint site.
  Asm a;
  a.add(mov_ri(Reg::Ecx, 3));
  const int top = a.next_index();
  a.add(alu_rr(Op::Add, Reg::Eax, Reg::Ecx));
  const int bp = a.add(alu_rr(Op::Xor, Reg::Ebx, Reg::Ebx));
  a.add(unary(Op::Dec, Reg::Ecx));
  a.branch(jcc(Cond::Ne), top);
  a.add(nullary(Op::Hlt));
  const std::vector<std::uint8_t> program = a.assemble(kCodeVirt);

  Rig rig;
  rig.load(program);
  rig.cpu.arm_breakpoint(0, kCodeVirt + static_cast<std::uint32_t>(
                                             a.offset_of(bp)));
  CpuEvent event{};
  EXPECT_EQ(rig.cpu.run_block(100, nullptr, event), 0u)
      << "threaded dispatch ran a block containing an armed breakpoint";
  EXPECT_GT(rig.cpu.block_fallbacks(), 0u);
  EXPECT_EQ(rig.cpu.threaded_ops(), 0u);
}

TEST(ThreadBlock, MidBlockFlipRederivesStepperFlagsAndLatency) {
  // The injector contract at the cpu level: run once through threaded
  // traces, host-flip an immediate in the middle of a cached block,
  // invalidate, and re-run.  Both legs must match a stepper doing the
  // identical flip — same registers, same full flags word, same cycle
  // count (fault latency is measured in cycles).
  Asm a;
  a.add(mov_ri(Reg::Eax, 7));
  a.add(alu_rr(Op::Cmp, Reg::Eax, Reg::Eax));  // zf = 1
  const int hop = a.branch(jcc(Cond::E), 0);   // always taken
  a.add(nullary(Op::Hlt));                     // dead fall-through
  a.set_target(hop, a.next_index());
  const int marker = a.add(mov_ri(Reg::Ebx, 1));
  a.add(alu_rr(Op::Add, Reg::Ecx, Reg::Ebx));
  a.add(nullary(Op::Hlt));
  const std::vector<std::uint8_t> program = a.assemble(kCodeVirt);
  const std::uint32_t flip_phys = phys_of_virt(kCodeVirt) +
                                  static_cast<std::uint32_t>(
                                      a.offset_of(marker) + 1);

  Rig threaded(/*threaded=*/true);
  Rig stepper(/*threaded=*/false);
  for (Rig* rig : {&threaded, &stepper}) {
    rig->load(program);
    ASSERT_EQ(rig->run(100).kind, CpuEventKind::Halted);
    rig->memory.write8(flip_phys, 5);
    rig->cpu.invalidate_blocks(flip_phys);
    rig->cpu.reset_fault_state();
    rig->cpu.set_eip(kCodeVirt);
  }
  ASSERT_EQ(threaded.run(200).kind, CpuEventKind::Halted);
  ASSERT_EQ(stepper.step_to_stop(200).kind, CpuEventKind::Halted);

  EXPECT_EQ(threaded.cpu.reg(Reg::Ebx), 5u) << "stale threaded block executed";
  for (int r = 0; r < isa::kRegCount; ++r) {
    EXPECT_EQ(threaded.cpu.reg(static_cast<Reg>(r)),
              stepper.cpu.reg(static_cast<Reg>(r)));
  }
  EXPECT_EQ(threaded.cpu.flags().to_word(), stepper.cpu.flags().to_word());
  EXPECT_EQ(threaded.cpu.cycles(), stepper.cpu.cycles());
  EXPECT_GE(threaded.cpu.block_invalidations(), 1u);
}

TEST(ThreadBlock, SnapshotRestoreDropsCachedHandlerState) {
  // The checkpoint-rung case: restore_pages bumps every restored page's
  // version, so a threaded block cached before the rung — handler
  // pointers, elision masks, page prevalidation list and all — must be
  // rebuilt before it can run again over the patched image.
  // The xor's flags are dead (killed by the add before any reader), so
  // the loop body carries one elidable op per iteration; the add/dec
  // pair stays exact because dec preserves CF and the jne ends the
  // trace fully live.
  Asm a;
  a.add(mov_ri(Reg::Ecx, 20));
  const int top = a.next_index();
  a.add(alu_rr(Op::Xor, Reg::Ebx, Reg::Ebx));
  a.add(alu_rr(Op::Add, Reg::Eax, Reg::Ecx));
  a.add(unary(Op::Dec, Reg::Ecx));
  a.branch(jcc(Cond::Ne), top);
  a.add(nullary(Op::Hlt));
  const std::vector<std::uint8_t> program = a.assemble(kCodeVirt);

  Rig rig;
  rig.load(program);
  ChunkedSnapshot snap = rig.memory.snapshot_pages();
  std::vector<std::uint64_t> memo;
  ASSERT_EQ(rig.run(400).kind, CpuEventKind::Halted);
  EXPECT_EQ(rig.cpu.reg(Reg::Eax), 20u * 21u / 2u);
  EXPECT_GT(rig.cpu.flag_elisions(), 0u);

  rig.memory.restore_pages(snap, memo);
  rig.memory.write8(phys_of_virt(kCodeVirt) + 1, 10);  // mov ecx, 10
  rig.cpu.reset_fault_state();
  rig.cpu.set_reg(Reg::Eax, 0);
  rig.cpu.set_eip(kCodeVirt);
  ASSERT_EQ(rig.run(400).kind, CpuEventKind::Halted);
  EXPECT_EQ(rig.cpu.reg(Reg::Eax), 10u * 11u / 2u)
      << "stale threaded trace survived the rung restore";

  // A stepper over the same patched program agrees on the flags word.
  Rig stepper(/*threaded=*/false);
  stepper.load(program);
  stepper.memory.write8(phys_of_virt(kCodeVirt) + 1, 10);
  ASSERT_EQ(stepper.step_to_stop(400).kind, CpuEventKind::Halted);
  EXPECT_EQ(rig.cpu.flags().to_word(), stepper.cpu.flags().to_word());
}

TEST(ThreadBlock, ModeToggleDropsCache) {
  // Blocks threaded under one dispatch mode must never execute under
  // the other: toggling modes mid-session rebuilds from scratch.
  Asm a;
  a.add(mov_ri(Reg::Ecx, 5));
  const int top = a.next_index();
  a.add(alu_rr(Op::Add, Reg::Eax, Reg::Ecx));
  a.add(unary(Op::Dec, Reg::Ecx));
  a.branch(jcc(Cond::Ne), top);
  a.add(nullary(Op::Hlt));
  Rig rig;
  rig.load(a.assemble(kCodeVirt));
  ASSERT_EQ(rig.run(100).kind, CpuEventKind::Halted);
  const std::uint64_t threaded_ops = rig.cpu.threaded_ops();
  EXPECT_GT(threaded_ops, 0u);

  rig.cpu.set_threaded(false);
  rig.cpu.reset_fault_state();
  rig.cpu.set_reg(Reg::Eax, 0);
  rig.cpu.set_eip(kCodeVirt);
  ASSERT_EQ(rig.run(200).kind, CpuEventKind::Halted);
  EXPECT_EQ(rig.cpu.reg(Reg::Eax), 15u);
  EXPECT_EQ(rig.cpu.threaded_ops(), threaded_ops)
      << "non-threaded dispatch retired ops through handler pointers";
}

}  // namespace
}  // namespace kfi::vm
