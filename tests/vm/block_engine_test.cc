// Differential tests for the superblock execution engine: two CPUs on
// identical machines run the same program, one through step() and one
// through run_block() with step() fallback (exactly as Machine::run
// drives it), and every piece of run-visible state must match —
// registers, flags, eip, cpl, cycle counter, trap records, and all of
// RAM.  Covers straight-line code, loops (block cache hits),
// self-modifying code, page-crossing instructions, traps mid-block,
// breakpoints, injection-flip invalidation, and randomized programs.
#include "vm/cpu.h"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "isa/encode.h"
#include "support/rng.h"
#include "vm/hostmap.h"

namespace kfi::vm {
namespace {

using isa::Cond;
using isa::Instruction;
using isa::Op;
using isa::Operand;
using isa::Reg;
using isa::Trap;

constexpr std::uint32_t kCodeVirt = 0xC0105000;  // inside arch text region
constexpr std::uint32_t kDataVirt = 0xC0200000;
constexpr std::uint32_t kHandlerVirt = 0xC0110000;

// One simulated machine half of the differential pair.
struct Rig {
  PhysicalMemory memory;
  Bus bus;
  Cpu cpu;

  Rig() : memory(kRamSize), cpu(memory, bus) {
    HostMapper mapper(memory, kBootPgdPhys, kKernelPtePhys);
    mapper.map_range(kKernelBase, 0, kRamSize, kPteWrite);
    cpu.mmu().set_cr3(kBootPgdPhys);
    memory.write32(kTssPhys, kBootStackTop);
    for (int v = 0; v < 32; ++v) cpu.set_vector(v, kHandlerVirt);
    cpu.set_vector(0x80, kHandlerVirt);
    cpu.set_vector(0x20, kHandlerVirt);
    // The handler page holds hlt so traps park the CPU visibly.
    memory.fill(phys_of_virt(kHandlerVirt), 64, 0xF4);
    cpu.set_reg(Reg::Esp, kBootStackTop);
    cpu.set_eip(kCodeVirt);
  }

  void load(const std::vector<std::uint8_t>& bytes) {
    memory.write_block(phys_of_virt(kCodeVirt), bytes.data(),
                       static_cast<std::uint32_t>(bytes.size()));
  }
};

struct TrapSeen {
  Trap trap;
  std::uint64_t cycle;
  std::uint32_t faulting_eip;

  bool operator==(const TrapSeen&) const = default;
};

// Runs `rig` up to `max_cycles` total cycles through the stepping
// engine, recording every trap delivery and the terminal event.
struct Outcome {
  CpuEvent last;
  std::vector<TrapSeen> traps;
};

Outcome run_step(Rig& rig, std::uint64_t max_cycles) {
  Outcome out;
  while (rig.cpu.cycles() < max_cycles) {
    out.last = rig.cpu.step();
    if (out.last.trap_taken) {
      out.traps.push_back({rig.cpu.last_trap().trap,
                           rig.cpu.last_trap().cycle,
                           rig.cpu.last_trap().faulting_eip});
    }
    if (out.last.kind != CpuEventKind::Executed) break;
  }
  return out;
}

// Same, but through run_block() with step() fallback — the exact
// dispatch Machine::run uses when no host event can fire.
Outcome run_block_engine(Rig& rig, std::uint64_t max_cycles) {
  Outcome out;
  while (rig.cpu.cycles() < max_cycles) {
    CpuEvent event;
    if (rig.cpu.run_block(max_cycles - rig.cpu.cycles(), nullptr, event) ==
        0) {
      event = rig.cpu.step();
    }
    out.last = event;
    if (event.trap_taken) {
      out.traps.push_back({rig.cpu.last_trap().trap,
                           rig.cpu.last_trap().cycle,
                           rig.cpu.last_trap().faulting_eip});
    }
    if (event.kind != CpuEventKind::Executed) break;
  }
  return out;
}

void expect_same_state(Rig& a, Rig& b) {
  for (int i = 0; i < isa::kRegCount; ++i) {
    EXPECT_EQ(a.cpu.reg(static_cast<Reg>(i)),
              b.cpu.reg(static_cast<Reg>(i)))
        << "reg " << i;
  }
  EXPECT_EQ(a.cpu.eip(), b.cpu.eip());
  EXPECT_EQ(a.cpu.flags().to_word(), b.cpu.flags().to_word());
  EXPECT_EQ(a.cpu.cpl(), b.cpu.cpl());
  EXPECT_EQ(a.cpu.cycles(), b.cpu.cycles());
  EXPECT_EQ(a.cpu.halted(), b.cpu.halted());
  EXPECT_EQ(a.cpu.dead(), b.cpu.dead());
  EXPECT_EQ(std::memcmp(a.memory.raw(0), b.memory.raw(0), kRamSize), 0)
      << "RAM diverged";
}

void expect_same_outcome(const Outcome& a, const Outcome& b) {
  EXPECT_EQ(a.last.kind, b.last.kind);
  EXPECT_EQ(a.traps, b.traps);
}

// --- Encoding helpers (mirroring cpu_test.cc) ---

Instruction mov_ri(Reg r, std::int32_t imm) {
  Instruction i;
  i.op = Op::Mov;
  i.dst = Operand::make_reg(r);
  i.src = Operand::make_imm(imm);
  return i;
}
Instruction alu_rr(Op op, Reg dst, Reg src) {
  Instruction i;
  i.op = op;
  i.dst = Operand::make_reg(dst);
  i.src = Operand::make_reg(src);
  return i;
}
Instruction mem_op(Op op, Reg r, Reg base, std::int32_t disp, bool load) {
  Instruction i;
  i.op = op;
  isa::MemRef m;
  m.has_base = true;
  m.base = base;
  m.disp = disp;
  if (load) {
    i.dst = Operand::make_reg(r);
    i.src = Operand::make_mem(m);
  } else {
    i.dst = Operand::make_mem(m);
    i.src = Operand::make_reg(r);
  }
  return i;
}
Instruction nullary(Op op) {
  Instruction i;
  i.op = op;
  return i;
}
Instruction jcc(Cond cond, std::int32_t rel) {
  Instruction i;
  i.op = Op::Jcc;
  i.cond = cond;
  i.rel = rel;
  return i;
}

std::vector<std::uint8_t> assemble(const std::vector<Instruction>& instrs) {
  std::vector<std::uint8_t> bytes;
  for (const Instruction& instr : instrs) {
    EXPECT_TRUE(isa::encode(instr, bytes));
  }
  return bytes;
}

void run_both(const std::vector<std::uint8_t>& program,
              std::uint64_t max_cycles, Rig& stepper, Rig& blocker) {
  stepper.load(program);
  blocker.load(program);
  const Outcome a = run_step(stepper, max_cycles);
  const Outcome b = run_block_engine(blocker, max_cycles);
  expect_same_outcome(a, b);
  expect_same_state(stepper, blocker);
}

TEST(BlockEngine, StraightLineMatchesStep) {
  Rig stepper, blocker;
  const auto program = assemble({
      mov_ri(Reg::Eax, 5),
      mov_ri(Reg::Ebx, 7),
      alu_rr(Op::Add, Reg::Eax, Reg::Ebx),
      mov_ri(Reg::Ecx, static_cast<std::int32_t>(kDataVirt)),
      mem_op(Op::Mov, Reg::Eax, Reg::Ecx, 0, false),
      mem_op(Op::Mov, Reg::Edx, Reg::Ecx, 0, true),
      nullary(Op::Hlt),
  });
  run_both(program, 1000, stepper, blocker);
  EXPECT_EQ(blocker.cpu.reg(Reg::Edx), 12u);
  EXPECT_GE(blocker.cpu.blocks_built(), 1u);
  EXPECT_GT(blocker.cpu.block_ops(), 0u);
  EXPECT_EQ(stepper.cpu.block_ops(), 0u);  // stepper never built blocks
}

TEST(BlockEngine, LoopHitsBlockCache) {
  Rig stepper, blocker;
  // ecx counts down; the backward jcc re-enters the same block.
  std::vector<Instruction> body = {
      mov_ri(Reg::Ecx, 50),
      mov_ri(Reg::Eax, 0),
      // loop:
      alu_rr(Op::Add, Reg::Eax, Reg::Ecx),
      nullary(Op::Nop),
      mov_ri(Reg::Ebx, 1),
      alu_rr(Op::Sub, Reg::Ecx, Reg::Ebx),
  };
  std::vector<std::uint8_t> head = assemble(body);
  std::vector<std::uint8_t> loop_tail = assemble({
      alu_rr(Op::Add, Reg::Eax, Reg::Ecx),
      nullary(Op::Nop),
      mov_ri(Reg::Ebx, 1),
      alu_rr(Op::Sub, Reg::Ecx, Reg::Ebx),
  });
  // Branch back over the loop body when ecx != 0 (short jcc is 2B).
  std::vector<std::uint8_t> program = head;
  const std::int32_t back = -static_cast<std::int32_t>(loop_tail.size()) - 2;
  const std::vector<std::uint8_t> jcc_bytes = assemble({jcc(Cond::Ne, back)});
  ASSERT_EQ(jcc_bytes.size(), 2u);
  for (std::uint8_t b : jcc_bytes) program.push_back(b);
  for (std::uint8_t b : assemble({nullary(Op::Hlt)})) program.push_back(b);
  run_both(program, 5000, stepper, blocker);
  EXPECT_GT(blocker.cpu.block_hits(), 10u);
}

TEST(BlockEngine, SelfModifyingCodeMatches) {
  Rig stepper, blocker;
  // Overwrite the upcoming `mov edx, 1` immediate with 0x7F before it
  // executes: the block (decoded ahead) must invalidate and re-decode.
  // mov-ri encodes as B8+r imm32, so the prefix length is fixed and the
  // rewritten immediate sits one byte into the fourth instruction.
  const std::uint32_t prefix_len = static_cast<std::uint32_t>(
      assemble({mov_ri(Reg::Eax, 0), mov_ri(Reg::Ecx, 0),
                mem_op(Op::Mov, Reg::Eax, Reg::Ecx, 0, false)})
          .size());
  const std::uint32_t target = kCodeVirt + prefix_len + 1;
  const auto program = assemble({
      mov_ri(Reg::Eax, 0x7F),
      mov_ri(Reg::Ecx, static_cast<std::int32_t>(target)),
      mem_op(Op::Mov, Reg::Eax, Reg::Ecx, 0, false),  // store into code
      mov_ri(Reg::Edx, 1),  // immediate gets rewritten to 0x7F
      nullary(Op::Hlt),
  });
  run_both(program, 1000, stepper, blocker);
  EXPECT_EQ(stepper.cpu.reg(Reg::Edx), 0x7Fu);
  EXPECT_EQ(blocker.cpu.reg(Reg::Edx), 0x7Fu);
  EXPECT_GE(blocker.cpu.block_invalidations(), 1u);
}

TEST(BlockEngine, PageCrossingInstructionFallsBack) {
  Rig stepper, blocker;
  // Pad with 1-byte nops so a 5-byte mov straddles the page boundary.
  std::vector<std::uint8_t> program;
  const std::uint32_t pad = kPageSize - (kCodeVirt & kPageMask) - 2;
  const std::vector<std::uint8_t> nop = assemble({nullary(Op::Nop)});
  ASSERT_EQ(nop.size(), 1u);
  for (std::uint32_t i = 0; i < pad; ++i) program.push_back(nop[0]);
  for (std::uint8_t b : assemble({mov_ri(Reg::Eax, 0x11223344)})) {
    program.push_back(b);
  }
  for (std::uint8_t b : assemble({nullary(Op::Hlt)})) program.push_back(b);
  run_both(program, 2 * kPageSize, stepper, blocker);
  EXPECT_EQ(blocker.cpu.reg(Reg::Eax), 0x11223344u);
}

TEST(BlockEngine, TrapMidBlockMatches) {
  Rig stepper, blocker;
  const auto program = assemble({
      mov_ri(Reg::Eax, 1),
      mov_ri(Reg::Ebx, 2),
      // Load from an unmapped kernel address -> #PF mid-block.
      mov_ri(Reg::Ecx, static_cast<std::int32_t>(0xC2000000)),
      mem_op(Op::Mov, Reg::Edx, Reg::Ecx, 0, true),
      mov_ri(Reg::Esi, 99),  // skipped: trap redirects to handler (hlt)
      nullary(Op::Hlt),
  });
  run_both(program, 1000, stepper, blocker);
  EXPECT_NE(stepper.cpu.reg(Reg::Esi), 99u);
}

TEST(BlockEngine, BreakpointInRangeFallsBackToExactInstruction) {
  Rig stepper, blocker;
  const auto program = assemble({
      mov_ri(Reg::Eax, 1),
      mov_ri(Reg::Ebx, 2),
      mov_ri(Reg::Ecx, 3),
      nullary(Op::Hlt),
  });
  const std::uint32_t bp_addr = kCodeVirt + 10;  // third mov
  stepper.cpu.arm_breakpoint(0, bp_addr);
  blocker.cpu.arm_breakpoint(0, bp_addr);
  stepper.load(program);
  blocker.load(program);
  const Outcome a = run_step(stepper, 1000);
  const Outcome b = run_block_engine(blocker, 1000);
  ASSERT_EQ(a.last.kind, CpuEventKind::Breakpoint);
  ASSERT_EQ(b.last.kind, CpuEventKind::Breakpoint);
  EXPECT_EQ(a.last.breakpoint_index, b.last.breakpoint_index);
  expect_same_state(stepper, blocker);
  EXPECT_EQ(blocker.cpu.eip(), bp_addr);
  EXPECT_GE(blocker.cpu.block_fallbacks(), 1u);
  // Resume across the breakpoint: both engines continue identically.
  const Outcome a2 = run_step(stepper, 1000);
  const Outcome b2 = run_block_engine(blocker, 1000);
  expect_same_outcome(a2, b2);
  expect_same_state(stepper, blocker);
  EXPECT_EQ(blocker.cpu.reg(Reg::Ecx), 3u);
}

TEST(BlockEngine, InjectionFlipInvalidatesCachedBlock) {
  // Unit test of the injector's invalidation hook: execute a block,
  // flip a bit in one of its instructions from the host side (as
  // injector.cc does at the trigger), invalidate, re-enter.
  Rig rig;
  const auto program = assemble({
      mov_ri(Reg::Eax, 1),  // immediate byte at kCodeVirt + 1
      nullary(Op::Nop),
      nullary(Op::Hlt),
  });
  rig.load(program);
  CpuEvent event;
  EXPECT_GT(rig.cpu.run_block(2, nullptr, event), 0u);
  EXPECT_EQ(rig.cpu.blocks_built(), 1u);
  EXPECT_EQ(rig.cpu.reg(Reg::Eax), 1u);

  // Host-side flip: 1 -> 3 in the cached mov's immediate.
  const std::uint32_t flip_phys = phys_of_virt(kCodeVirt) + 1;
  rig.memory.write8(flip_phys,
                    static_cast<std::uint8_t>(rig.memory.read8(flip_phys) ^
                                              (1u << 1)));
  const std::uint64_t before = rig.cpu.block_invalidations();
  rig.cpu.invalidate_blocks(flip_phys);
  EXPECT_EQ(rig.cpu.block_invalidations(), before + 1);

  // Re-run from the top: the rebuilt block must see the flipped byte.
  rig.cpu.set_eip(kCodeVirt);
  EXPECT_GT(rig.cpu.run_block(2, nullptr, event), 0u);
  EXPECT_EQ(rig.cpu.reg(Reg::Eax), 3u);
  EXPECT_EQ(rig.cpu.blocks_built(), 2u);
}

TEST(BlockEngine, RandomProgramsDifferential) {
  // Randomized kasm programs: arithmetic, memory traffic, short
  // forward/backward branches, occasional stores into the code page
  // (self-modifying), occasional loads from unmapped space (traps).
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    SCOPED_TRACE(seed);
    kfi::Rng rng(seed * 0x9E3779B97F4A7C15ULL);
    std::vector<Instruction> instrs;
    const int count = 20 + static_cast<int>(rng.below(40));
    for (int i = 0; i < count; ++i) {
      switch (rng.below(8)) {
        case 0:
          instrs.push_back(mov_ri(static_cast<Reg>(rng.below(4)),
                                  static_cast<std::int32_t>(rng.next_u32())));
          break;
        case 1:
        case 2: {
          const Op op = rng.below(2) == 0 ? Op::Add : Op::Xor;
          instrs.push_back(alu_rr(op, static_cast<Reg>(rng.below(4)),
                                  static_cast<Reg>(rng.below(4))));
          break;
        }
        case 3:
          instrs.push_back(mov_ri(Reg::Esi,
                                  static_cast<std::int32_t>(
                                      kDataVirt + 4 * rng.below(64))));
          instrs.push_back(
              mem_op(Op::Mov, static_cast<Reg>(rng.below(4)), Reg::Esi,
                     0, rng.below(2) == 0));
          break;
        case 4:
          // Store into the code page well past the program: exercises
          // version bumps on the executing page.
          instrs.push_back(mov_ri(
              Reg::Edi, static_cast<std::int32_t>(kCodeVirt + 0x800)));
          instrs.push_back(mem_op(Op::Mov, Reg::Eax, Reg::Edi,
                                  static_cast<std::int32_t>(4 * rng.below(8)),
                                  false));
          break;
        case 5:
          // Short forward skip over the next instruction (6B jcc + 5B mov).
          instrs.push_back(jcc(static_cast<Cond>(rng.below(8)), 5));
          instrs.push_back(mov_ri(Reg::Ebx,
                                  static_cast<std::int32_t>(rng.next_u32())));
          break;
        case 6:
          if (rng.below(4) == 0) {
            // Rare trap: load from unmapped space ends the run at the
            // handler's hlt.
            instrs.push_back(mov_ri(
                Reg::Ecx, static_cast<std::int32_t>(0xC2000000)));
            instrs.push_back(mem_op(Op::Mov, Reg::Edx, Reg::Ecx, 0, true));
          } else {
            instrs.push_back(nullary(Op::Nop));
          }
          break;
        default:
          instrs.push_back(alu_rr(Op::Cmp, static_cast<Reg>(rng.below(4)),
                                  static_cast<Reg>(rng.below(4))));
          break;
      }
    }
    instrs.push_back(nullary(Op::Hlt));

    Rig stepper, blocker;
    run_both(assemble(instrs), 4096, stepper, blocker);
  }
}

TEST(BlockEngine, CycleLimitStopsExactly) {
  // run_block must never retire more than max_instructions, so Machine
  // boundaries (timer, deadline, checkpoint rung) land on the same
  // loop top as the stepper.
  Rig rig;
  std::vector<Instruction> instrs;
  for (int i = 0; i < 20; ++i) instrs.push_back(nullary(Op::Nop));
  instrs.push_back(nullary(Op::Hlt));
  rig.load(assemble(instrs));
  CpuEvent event;
  const std::size_t n = rig.cpu.run_block(7, nullptr, event);
  EXPECT_EQ(n, 7u);
  EXPECT_EQ(rig.cpu.cycles(), 7u);
  EXPECT_EQ(rig.cpu.eip(), kCodeVirt + 7);  // nops are 1 byte
}

}  // namespace
}  // namespace kfi::vm
