// Dirty-page snapshot/restore: the version-tracked restore must be
// bit-identical to a full-image copy under arbitrary write patterns,
// including repeated restores from the same snapshot, sparse delta
// snapshots layered over a full base, and one immutable snapshot shared
// between several memories each holding a private equality memo.
#include "vm/memory.h"
#include "vm/snapshot.h"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "support/rng.h"

namespace kfi::vm {
namespace {

constexpr std::uint32_t kPages = 64;
constexpr std::uint32_t kSize = kPages * 4096;

std::vector<std::uint8_t> contents(const PhysicalMemory& mem) {
  std::vector<std::uint8_t> out(mem.size());
  std::memcpy(out.data(), mem.raw(0), mem.size());
  return out;
}

void scribble(PhysicalMemory& mem, Rng& rng, int writes) {
  for (int i = 0; i < writes; ++i) {
    switch (rng.below(3)) {
      case 0:
        mem.write8(static_cast<std::uint32_t>(rng.below(kSize)),
                   static_cast<std::uint8_t>(rng.next_u32()));
        break;
      case 1:
        mem.write32(static_cast<std::uint32_t>(rng.below(kSize - 4)),
                    rng.next_u32());
        break;
      default: {
        const std::uint32_t len = 1 + static_cast<std::uint32_t>(rng.below(9000));
        const std::uint32_t at =
            static_cast<std::uint32_t>(rng.below(kSize - len));
        mem.fill(at, len, static_cast<std::uint8_t>(rng.next_u32()));
        break;
      }
    }
  }
}

TEST(MemorySnapshot, DirtyRestoreMatchesFullCopyUnderFuzz) {
  PhysicalMemory mem(kSize);
  Rng rng(0xD5Bu);
  scribble(mem, rng, 200);

  ChunkedSnapshot snap = mem.snapshot_pages();
  std::vector<std::uint64_t> memo = snap.capture_memo();
  const std::vector<std::uint8_t> reference = contents(mem);

  // Repeated rounds against the same snapshot exercise the clean-page
  // bookkeeping (a page restored last round and untouched since must
  // not be copied again, and must still read back correctly).
  for (int round = 0; round < 20; ++round) {
    scribble(mem, rng, static_cast<int>(rng.below(40)));
    mem.restore_pages(snap, memo);
    ASSERT_EQ(contents(mem), reference) << "round " << round;
  }
}

TEST(MemorySnapshot, RepeatRestoreCopiesNothingWhenClean) {
  PhysicalMemory mem(kSize);
  Rng rng(7u);
  scribble(mem, rng, 100);

  ChunkedSnapshot snap = mem.snapshot_pages();
  std::vector<std::uint64_t> memo = snap.capture_memo();
  mem.write8(0, 0xAA);
  mem.restore_pages(snap, memo);
  const std::uint64_t pages_after_first = mem.restored_pages();
  EXPECT_GE(pages_after_first, 1u);

  // No writes since the restore: every page is clean, nothing to copy.
  mem.restore_pages(snap, memo);
  EXPECT_EQ(mem.restored_pages(), pages_after_first);
}

TEST(MemorySnapshot, DeltaRestoreRebuildsCaptureState) {
  PhysicalMemory mem(kSize);
  Rng rng(0xC0FFEEu);
  scribble(mem, rng, 150);
  ChunkedSnapshot base = mem.snapshot_pages();
  std::vector<std::uint64_t> base_memo = base.capture_memo();

  scribble(mem, rng, 60);
  ChunkedSnapshot delta = mem.snapshot_delta(base, &base_memo);
  std::vector<std::uint64_t> delta_memo = delta.capture_memo();
  const std::vector<std::uint8_t> at_capture = contents(mem);
  // A delta stores only diverged pages, not the whole image.
  EXPECT_LT(delta.storage_bytes(), static_cast<std::uint64_t>(kSize));

  for (int round = 0; round < 10; ++round) {
    scribble(mem, rng, static_cast<int>(rng.below(50)));
    mem.restore_pages(delta, delta_memo, &base_memo);
    ASSERT_EQ(contents(mem), at_capture) << "round " << round;
  }

  // The base must still restore its own (earlier) state afterwards.
  ChunkedSnapshot verify = mem.snapshot_pages();
  mem.restore_pages(base, base_memo);
  PhysicalMemory other(kSize);
  other.restore_pages_full(verify);
  // `verify` captured the delta state; base differs from it somewhere.
  EXPECT_NE(contents(mem), contents(other));
}

TEST(MemorySnapshot, InterleavedSnapshotsStayIndependent) {
  PhysicalMemory mem(kSize);
  Rng rng(42u);
  scribble(mem, rng, 80);
  ChunkedSnapshot base = mem.snapshot_pages();
  std::vector<std::uint64_t> base_memo = base.capture_memo();
  const std::vector<std::uint8_t> base_state = contents(mem);

  scribble(mem, rng, 40);
  ChunkedSnapshot mid = mem.snapshot_delta(base, &base_memo);
  std::vector<std::uint64_t> mid_memo = mid.capture_memo();
  const std::vector<std::uint8_t> mid_state = contents(mem);

  for (int round = 0; round < 8; ++round) {
    scribble(mem, rng, 30);
    mem.restore_pages(mid, mid_memo, &base_memo);
    ASSERT_EQ(contents(mem), mid_state);
    scribble(mem, rng, 30);
    mem.restore_pages(base, base_memo);
    ASSERT_EQ(contents(mem), base_state);
  }
}

// The shared-cache contract: one immutable snapshot (plus a delta over
// it) serves several memories, each with its own memo.  A foreign
// memory starts from no knowledge (fresh/empty memo) and must converge
// to the identical bytes; its memo then makes repeat restores cheap,
// and interleaved restores on different memories must not interfere.
TEST(MemorySnapshot, SharedSnapshotAcrossMemoriesWithPrivateMemos) {
  PhysicalMemory capturer(kSize);
  Rng rng(0xABCDu);
  scribble(capturer, rng, 120);
  const ChunkedSnapshot base = capturer.snapshot_pages();
  const std::vector<std::uint8_t> base_state = contents(capturer);

  scribble(capturer, rng, 50);
  std::vector<std::uint64_t> cap_base_memo = base.capture_memo();
  const ChunkedSnapshot delta = capturer.snapshot_delta(base);
  const std::vector<std::uint8_t> delta_state = contents(capturer);

  PhysicalMemory a(kSize);
  PhysicalMemory b(kSize);
  // Deliberately desynchronize the foreign memories' version counters
  // from the capturer's (the unsoundness the caller-owned memo design
  // removes: a foreign array's versions must never be compared against
  // capture-time versions).
  scribble(a, rng, 33);
  scribble(b, rng, 77);

  std::vector<std::uint64_t> a_base_memo;  // empty = no knowledge
  std::vector<std::uint64_t> b_base_memo;
  std::vector<std::uint64_t> a_delta_memo;
  std::vector<std::uint64_t> b_delta_memo;

  a.restore_pages(base, a_base_memo);
  ASSERT_EQ(contents(a), base_state);
  b.restore_pages(delta, b_delta_memo, &b_base_memo);
  // b never restored `base`, and its empty base memo must not be
  // consulted as knowledge — the delta restore has to copy base-resolved
  // chunks too.
  ASSERT_EQ(contents(b), delta_state);

  for (int round = 0; round < 6; ++round) {
    scribble(a, rng, 25);
    scribble(b, rng, 25);
    a.restore_pages(delta, a_delta_memo, &a_base_memo);
    ASSERT_EQ(contents(a), delta_state) << "round " << round;
    b.restore_pages(base, b_base_memo);
    ASSERT_EQ(contents(b), base_state) << "round " << round;
    EXPECT_TRUE(base.matches(b.raw(0), b.page_versions(), b_base_memo,
                             nullptr));
    EXPECT_TRUE(delta.matches(a.raw(0), a.page_versions(), a_delta_memo,
                              &a_base_memo));
  }

  // Clean repeat restores copy nothing, per-memory.
  const std::uint64_t a_pages = a.restored_pages();
  a.restore_pages(delta, a_delta_memo, &a_base_memo);
  EXPECT_EQ(a.restored_pages(), a_pages);

  // The capturer's own memo still works after all of that (snapshot
  // state was never mutated by the other memories' restores).
  scribble(capturer, rng, 20);
  capturer.restore_pages(base, cap_base_memo);
  ASSERT_EQ(contents(capturer), base_state);
}

TEST(MemorySnapshot, FromPartsViewRestoresIdenticallyToOwnedCopy) {
  PhysicalMemory mem(kSize);
  Rng rng(0xBEEFu);
  scribble(mem, rng, 150);
  ChunkedSnapshot base = mem.snapshot_pages();
  const std::vector<std::uint8_t> base_state = contents(mem);
  scribble(mem, rng, 40);
  std::vector<std::uint64_t> base_memo = base.capture_memo();
  ChunkedSnapshot delta = ChunkedSnapshot::delta(
      mem.raw(0), mem.size(), mem.page_versions(), base, &base_memo);
  const std::vector<std::uint8_t> delta_state = contents(mem);

  // Reassemble both snapshots from their serialized parts, once with an
  // owned payload copy and once as a zero-copy view into the original
  // payload bytes — the bundle-mmap path.
  ChunkedSnapshot base_copy = ChunkedSnapshot::from_parts(
      base.chunk_size(), base.size(), base.versions(), nullptr, {},
      base.payload(), base.payload_size(), /*copy_payload=*/true);
  ChunkedSnapshot base_view = ChunkedSnapshot::from_parts(
      base.chunk_size(), base.size(), base.versions(), nullptr, {},
      base.payload(), base.payload_size(), /*copy_payload=*/false);
  EXPECT_FALSE(base_copy.is_view());
  EXPECT_TRUE(base_view.is_view());
  EXPECT_EQ(base_view.payload(), base.payload())
      << "a view must alias the serialized payload, not copy it";
  ChunkedSnapshot delta_view = ChunkedSnapshot::from_parts(
      delta.chunk_size(), delta.size(), delta.versions(), &base_view,
      delta.slots(), delta.payload(), delta.payload_size(),
      /*copy_payload=*/false);
  EXPECT_TRUE(delta_view.is_delta());

  // Restores through the reassembled snapshots must land the same bytes
  // as the originals, for both the copy and the view.
  for (ChunkedSnapshot* snap : {&base_copy, &base_view}) {
    PhysicalMemory target(kSize);
    std::vector<std::uint64_t> memo = snap->fresh_memo();
    target.restore_pages(*snap, memo);
    ASSERT_EQ(contents(target), base_state);
  }
  {
    PhysicalMemory target(kSize);
    std::vector<std::uint64_t> memo = delta_view.fresh_memo();
    std::vector<std::uint64_t> view_base_memo = base_view.fresh_memo();
    target.restore_pages(base_view, view_base_memo);
    target.restore_pages(delta_view, memo, &view_base_memo);
    ASSERT_EQ(contents(target), delta_state);
  }
}

}  // namespace
}  // namespace kfi::vm
