// Dirty-page snapshot/restore: the version-tracked restore must be
// bit-identical to a full-image copy under arbitrary write patterns,
// including repeated restores from the same snapshot and sparse delta
// snapshots layered over a full base.
#include "vm/memory.h"
#include "vm/snapshot.h"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "support/rng.h"

namespace kfi::vm {
namespace {

constexpr std::uint32_t kPages = 64;
constexpr std::uint32_t kSize = kPages * 4096;

std::vector<std::uint8_t> contents(const PhysicalMemory& mem) {
  std::vector<std::uint8_t> out(mem.size());
  std::memcpy(out.data(), mem.raw(0), mem.size());
  return out;
}

void scribble(PhysicalMemory& mem, Rng& rng, int writes) {
  for (int i = 0; i < writes; ++i) {
    switch (rng.below(3)) {
      case 0:
        mem.write8(static_cast<std::uint32_t>(rng.below(kSize)),
                   static_cast<std::uint8_t>(rng.next_u32()));
        break;
      case 1:
        mem.write32(static_cast<std::uint32_t>(rng.below(kSize - 4)),
                    rng.next_u32());
        break;
      default: {
        const std::uint32_t len = 1 + static_cast<std::uint32_t>(rng.below(9000));
        const std::uint32_t at =
            static_cast<std::uint32_t>(rng.below(kSize - len));
        mem.fill(at, len, static_cast<std::uint8_t>(rng.next_u32()));
        break;
      }
    }
  }
}

TEST(MemorySnapshot, DirtyRestoreMatchesFullCopyUnderFuzz) {
  PhysicalMemory mem(kSize);
  Rng rng(0xD5Bu);
  scribble(mem, rng, 200);

  ChunkedSnapshot snap = mem.snapshot_pages();
  const std::vector<std::uint8_t> reference = contents(mem);

  // Repeated rounds against the same snapshot exercise the clean-page
  // bookkeeping (a page restored last round and untouched since must
  // not be copied again, and must still read back correctly).
  for (int round = 0; round < 20; ++round) {
    scribble(mem, rng, static_cast<int>(rng.below(40)));
    mem.restore_pages(snap);
    ASSERT_EQ(contents(mem), reference) << "round " << round;
  }
}

TEST(MemorySnapshot, RepeatRestoreCopiesNothingWhenClean) {
  PhysicalMemory mem(kSize);
  Rng rng(7u);
  scribble(mem, rng, 100);

  ChunkedSnapshot snap = mem.snapshot_pages();
  mem.write8(0, 0xAA);
  mem.restore_pages(snap);
  const std::uint64_t pages_after_first = mem.restored_pages();
  EXPECT_GE(pages_after_first, 1u);

  // No writes since the restore: every page is clean, nothing to copy.
  mem.restore_pages(snap);
  EXPECT_EQ(mem.restored_pages(), pages_after_first);
}

TEST(MemorySnapshot, DeltaRestoreRebuildsCaptureState) {
  PhysicalMemory mem(kSize);
  Rng rng(0xC0FFEEu);
  scribble(mem, rng, 150);
  ChunkedSnapshot base = mem.snapshot_pages();

  scribble(mem, rng, 60);
  ChunkedSnapshot delta = mem.snapshot_delta(base);
  const std::vector<std::uint8_t> at_capture = contents(mem);
  // A delta stores only diverged pages, not the whole image.
  EXPECT_LT(delta.storage_bytes(), static_cast<std::uint64_t>(kSize));

  for (int round = 0; round < 10; ++round) {
    scribble(mem, rng, static_cast<int>(rng.below(50)));
    mem.restore_pages(delta);
    ASSERT_EQ(contents(mem), at_capture) << "round " << round;
  }

  // The base must still restore its own (earlier) state afterwards.
  ChunkedSnapshot verify = mem.snapshot_pages();
  mem.restore_pages(base);
  PhysicalMemory other(kSize);
  other.restore_pages_full(verify);
  // `verify` captured the delta state; base differs from it somewhere.
  EXPECT_NE(contents(mem), contents(other));
}

TEST(MemorySnapshot, InterleavedSnapshotsStayIndependent) {
  PhysicalMemory mem(kSize);
  Rng rng(42u);
  scribble(mem, rng, 80);
  ChunkedSnapshot base = mem.snapshot_pages();
  const std::vector<std::uint8_t> base_state = contents(mem);

  scribble(mem, rng, 40);
  ChunkedSnapshot mid = mem.snapshot_delta(base);
  const std::vector<std::uint8_t> mid_state = contents(mem);

  for (int round = 0; round < 8; ++round) {
    scribble(mem, rng, 30);
    mem.restore_pages(mid);
    ASSERT_EQ(contents(mem), mid_state);
    scribble(mem, rng, 30);
    mem.restore_pages(base);
    ASSERT_EQ(contents(mem), base_state);
  }
}

}  // namespace
}  // namespace kfi::vm
