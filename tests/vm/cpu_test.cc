// CPU core tests: hand-encoded programs run on a minimal flat-mapped
// machine, exercising execution semantics, paging, privilege, traps,
// debug registers, and the cycle counter.
#include "vm/cpu.h"

#include <gtest/gtest.h>

#include <vector>

#include "isa/encode.h"
#include "vm/hostmap.h"

namespace kfi::vm {
namespace {

using isa::Cond;
using isa::Instruction;
using isa::Op;
using isa::Operand;
using isa::Reg;
using isa::Trap;

constexpr std::uint32_t kCodeVirt = 0xC0105000;  // inside arch text region
constexpr std::uint32_t kDataVirt = 0xC0200000;
constexpr std::uint32_t kHandlerVirt = 0xC0110000;
constexpr std::uint32_t kUserCodeVirt = kUserTextBase;
constexpr std::uint32_t kUserCodePhys = 0x00300000;
constexpr std::uint32_t kUserStackPhys = 0x00301000;
constexpr std::uint32_t kUserStackVirt = kUserStackTop - kPageSize;

// A loopback device for MMIO tests.
class ScratchDevice : public Device {
 public:
  std::uint32_t mmio_read(std::uint32_t offset) override {
    reads.push_back(offset);
    return 0xFEEDF00Du + offset;
  }
  void mmio_write(std::uint32_t offset, std::uint32_t value) override {
    writes.push_back({offset, value});
  }
  std::vector<std::uint32_t> reads;
  std::vector<std::pair<std::uint32_t, std::uint32_t>> writes;
};

class CpuTest : public ::testing::Test {
 protected:
  CpuTest() : memory(kRamSize), cpu(memory, bus) {
    HostMapper mapper(memory, kBootPgdPhys, kKernelPtePhys);
    // Kernel straight map (supervisor, writable).
    mapper.map_range(kKernelBase, 0, kRamSize, kPteWrite);
    // One user code page and one user stack page.
    mapper.map(kUserCodeVirt, kUserCodePhys, kPteUser | kPteWrite);
    mapper.map(kUserStackVirt, kUserStackPhys, kPteUser | kPteWrite);
    pte_cursor = mapper.cursor();

    cpu.mmu().set_cr3(kBootPgdPhys);
    memory.write32(kTssPhys, kBootStackTop);  // esp0

    // All exception vectors point at a recognizable handler address.
    for (int v = 0; v < 32; ++v) cpu.set_vector(v, kHandlerVirt);
    cpu.set_vector(0x80, kHandlerVirt);
    cpu.set_vector(0x20, kHandlerVirt);
    // The handler page holds hlt so stray continued execution is visible.
    memory.fill(phys_of_virt(kHandlerVirt), 64, 0xF4);

    cpu.set_reg(Reg::Esp, kBootStackTop);
    cpu.set_eip(kCodeVirt);

    bus.attach(0xFF100000, kPageSize, &scratch);
  }

  // Emits instructions at `at` (kernel virtual), returns end address.
  std::uint32_t emit(std::uint32_t at,
                     const std::vector<Instruction>& instrs) {
    std::vector<std::uint8_t> bytes;
    for (const Instruction& instr : instrs) {
      EXPECT_TRUE(isa::encode(instr, bytes));
    }
    memory.write_block(phys_of_virt(at), bytes.data(),
                       static_cast<std::uint32_t>(bytes.size()));
    return at + static_cast<std::uint32_t>(bytes.size());
  }

  void emit_user(std::uint32_t at, const std::vector<Instruction>& instrs) {
    std::vector<std::uint8_t> bytes;
    for (const Instruction& instr : instrs) {
      EXPECT_TRUE(isa::encode(instr, bytes));
    }
    memory.write_block(kUserCodePhys + (at - kUserCodeVirt), bytes.data(),
                       static_cast<std::uint32_t>(bytes.size()));
  }

  // Steps until `n` instructions execute or an event interrupts.
  CpuEvent run(int n) {
    CpuEvent event;
    for (int i = 0; i < n; ++i) {
      event = cpu.step();
      if (event.kind != CpuEventKind::Executed || event.trap_taken) break;
    }
    return event;
  }

  static Instruction mov_ri(Reg r, std::int32_t imm) {
    Instruction i;
    i.op = Op::Mov;
    i.dst = Operand::make_reg(r);
    i.src = Operand::make_imm(imm);
    return i;
  }
  static Instruction alu_rr(Op op, Reg dst, Reg src) {
    Instruction i;
    i.op = op;
    i.dst = Operand::make_reg(dst);
    i.src = Operand::make_reg(src);
    return i;
  }
  static Instruction mem_op(Op op, Reg r, Reg base, std::int32_t disp,
                            bool load) {
    Instruction i;
    i.op = op;
    isa::MemRef m;
    m.has_base = true;
    m.base = base;
    m.disp = disp;
    if (load) {
      i.dst = Operand::make_reg(r);
      i.src = Operand::make_mem(m);
    } else {
      i.dst = Operand::make_mem(m);
      i.src = Operand::make_reg(r);
    }
    return i;
  }
  static Instruction nullary(Op op) {
    Instruction i;
    i.op = op;
    return i;
  }
  static Instruction jcc(Cond cond, std::int32_t rel) {
    Instruction i;
    i.op = Op::Jcc;
    i.cond = cond;
    i.rel = rel;
    return i;
  }

  PhysicalMemory memory;
  Bus bus;
  Cpu cpu;
  ScratchDevice scratch;
  std::uint32_t pte_cursor = 0;
};

TEST_F(CpuTest, ArithmeticAndFlags) {
  emit(kCodeVirt, {
    mov_ri(Reg::Eax, 5),
    mov_ri(Reg::Ebx, 7),
    alu_rr(Op::Add, Reg::Eax, Reg::Ebx),   // eax = 12
    alu_rr(Op::Sub, Reg::Eax, Reg::Ebx),   // eax = 5, flags from 5
  });
  run(4);
  EXPECT_EQ(cpu.reg(Reg::Eax), 5u);
  EXPECT_FALSE(cpu.flags().zf);
  EXPECT_FALSE(cpu.flags().sf);
  EXPECT_EQ(cpu.cycles(), 4u);
}

TEST_F(CpuTest, SubSetsCarryAndSign) {
  emit(kCodeVirt, {
    mov_ri(Reg::Eax, 1),
    mov_ri(Reg::Ebx, 2),
    alu_rr(Op::Sub, Reg::Eax, Reg::Ebx),  // 1-2 -> -1, CF=1, SF=1
  });
  run(3);
  EXPECT_EQ(cpu.reg(Reg::Eax), 0xFFFFFFFFu);
  EXPECT_TRUE(cpu.flags().cf);
  EXPECT_TRUE(cpu.flags().sf);
  EXPECT_FALSE(cpu.flags().of);
}

TEST_F(CpuTest, AddOverflowFlag) {
  emit(kCodeVirt, {
    mov_ri(Reg::Eax, 0x7FFFFFFF),
    mov_ri(Reg::Ebx, 1),
    alu_rr(Op::Add, Reg::Eax, Reg::Ebx),
  });
  run(3);
  EXPECT_EQ(cpu.reg(Reg::Eax), 0x80000000u);
  EXPECT_TRUE(cpu.flags().of);
  EXPECT_TRUE(cpu.flags().sf);
  EXPECT_FALSE(cpu.flags().cf);
}

TEST_F(CpuTest, LoadStoreThroughPaging) {
  emit(kCodeVirt, {
    mov_ri(Reg::Ebx, static_cast<std::int32_t>(kDataVirt)),
    mov_ri(Reg::Eax, 0x12345678),
    mem_op(Op::Mov, Reg::Eax, Reg::Ebx, 8, /*load=*/false),
    mov_ri(Reg::Ecx, 0),
    mem_op(Op::Mov, Reg::Ecx, Reg::Ebx, 8, /*load=*/true),
  });
  run(5);
  EXPECT_EQ(cpu.reg(Reg::Ecx), 0x12345678u);
  EXPECT_EQ(memory.read32(phys_of_virt(kDataVirt) + 8), 0x12345678u);
}

TEST_F(CpuTest, ConditionalBranchTakenAndNot) {
  // cmp eax,ebx; je +2 (skip inc eax); inc ecx
  emit(kCodeVirt, {
    mov_ri(Reg::Eax, 3),
    mov_ri(Reg::Ebx, 3),
    alu_rr(Op::Cmp, Reg::Eax, Reg::Ebx),
    jcc(Cond::E, 1),  // skip the 1-byte inc eax
    [] { Instruction i; i.op = Op::Inc; i.dst = Operand::make_reg(Reg::Eax); return i; }(),
    [] { Instruction i; i.op = Op::Inc; i.dst = Operand::make_reg(Reg::Ecx); return i; }(),
  });
  run(5);
  EXPECT_EQ(cpu.reg(Reg::Eax), 3u) << "inc eax should have been skipped";
  EXPECT_EQ(cpu.reg(Reg::Ecx), 1u);
}

TEST_F(CpuTest, CallAndRet) {
  // call +5 (to the mov at target); target: mov eax,9; ret
  const std::uint32_t after_call = kCodeVirt + 5;
  Instruction call;
  call.op = Op::Call;
  call.rel = 1;  // skip the 1-byte hlt after the call
  emit(kCodeVirt, {call, nullary(Op::Hlt)});
  emit(after_call + 1, {mov_ri(Reg::Eax, 9), nullary(Op::Ret)});
  run(3);
  EXPECT_EQ(cpu.reg(Reg::Eax), 9u);
  EXPECT_EQ(cpu.eip(), after_call);  // back at the hlt
}

TEST_F(CpuTest, PushPopStack) {
  emit(kCodeVirt, {
    mov_ri(Reg::Eax, 0xAA),
    [] { Instruction i; i.op = Op::Push; i.src = Operand::make_reg(Reg::Eax); return i; }(),
    mov_ri(Reg::Eax, 0),
    [] { Instruction i; i.op = Op::Pop; i.dst = Operand::make_reg(Reg::Ebx); return i; }(),
  });
  const std::uint32_t esp0 = cpu.reg(Reg::Esp);
  run(4);
  EXPECT_EQ(cpu.reg(Reg::Ebx), 0xAAu);
  EXPECT_EQ(cpu.reg(Reg::Esp), esp0);
}

TEST_F(CpuTest, PageFaultOnUnmappedKernelAddress) {
  emit(kCodeVirt, {
    mov_ri(Reg::Ebx, 0x1B),  // NULL-ish pointer
    mem_op(Op::Mov, Reg::Eax, Reg::Ebx, 0, /*load=*/true),
  });
  const CpuEvent event = run(2);
  EXPECT_TRUE(event.trap_taken);
  EXPECT_EQ(event.trap, Trap::PageFault);
  EXPECT_EQ(cpu.last_trap().fault_addr, 0x1Bu);
  EXPECT_EQ(cpu.last_trap().faulting_eip, kCodeVirt + 5);
  EXPECT_EQ(cpu.eip(), kHandlerVirt);
  EXPECT_EQ(cpu.cpl(), 0);
}

TEST_F(CpuTest, TrapFramePushedCorrectly) {
  emit(kCodeVirt, {
    mov_ri(Reg::Ebx, 0x00000F00),  // unmapped
    mem_op(Op::Mov, Reg::Eax, Reg::Ebx, 0, /*load=*/true),
  });
  run(2);
  const std::uint32_t esp = cpu.reg(Reg::Esp);
  std::uint32_t word = 0;
  ASSERT_TRUE(cpu.peek32(esp + 0, word));
  EXPECT_EQ(word, kCodeVirt + 5u);  // old eip (the faulting mov)
  ASSERT_TRUE(cpu.peek32(esp + 8, word));
  EXPECT_EQ(word, kBootStackTop);  // old esp
  ASSERT_TRUE(cpu.peek32(esp + 12, word));
  EXPECT_EQ(word, 0u);  // old cpl
  ASSERT_TRUE(cpu.peek32(esp + 20, word));
  EXPECT_EQ(word, 0xF00u);  // fault address
}

TEST_F(CpuTest, WriteToReadOnlyPageFaultsWithProtectionBits) {
  // Map a read-only page and write to it.
  HostMapper mapper(memory, kBootPgdPhys, pte_cursor);
  mapper.map(0x0A000000, 0x00310000, kPteUser);  // no kPteWrite
  cpu.mmu().flush_tlb();
  emit(kCodeVirt, {
    mov_ri(Reg::Ebx, 0x0A000000),
    mem_op(Op::Mov, Reg::Eax, Reg::Ebx, 4, /*load=*/false),
  });
  const CpuEvent event = run(2);
  EXPECT_TRUE(event.trap_taken);
  EXPECT_EQ(event.trap, Trap::PageFault);
  EXPECT_EQ(cpu.last_trap().error_code, kPfErrPresent | kPfErrWrite);
}

TEST_F(CpuTest, InvalidOpcodeTraps) {
  memory.write8(phys_of_virt(kCodeVirt), 0xF1);  // undefined byte
  const CpuEvent event = cpu.step();
  EXPECT_TRUE(event.trap_taken);
  EXPECT_EQ(event.trap, Trap::InvalidOpcode);
  EXPECT_EQ(cpu.last_trap().faulting_eip, kCodeVirt);
}

TEST_F(CpuTest, Ud2Traps) {
  emit(kCodeVirt, {nullary(Op::Ud2)});
  const CpuEvent event = cpu.step();
  EXPECT_TRUE(event.trap_taken);
  EXPECT_EQ(event.trap, Trap::InvalidOpcode);
}

TEST_F(CpuTest, DivideByZeroTraps) {
  Instruction div;
  div.op = Op::Div;
  div.src = Operand::make_reg(Reg::Ecx);
  emit(kCodeVirt, {mov_ri(Reg::Ecx, 0), mov_ri(Reg::Eax, 10), div});
  const CpuEvent event = run(3);
  EXPECT_TRUE(event.trap_taken);
  EXPECT_EQ(event.trap, Trap::DivideError);
}

TEST_F(CpuTest, DivComputesQuotientRemainder) {
  Instruction div;
  div.op = Op::Div;
  div.src = Operand::make_reg(Reg::Ecx);
  emit(kCodeVirt, {mov_ri(Reg::Edx, 0), mov_ri(Reg::Eax, 17),
                   mov_ri(Reg::Ecx, 5), div});
  run(4);
  EXPECT_EQ(cpu.reg(Reg::Eax), 3u);
  EXPECT_EQ(cpu.reg(Reg::Edx), 2u);
}

TEST_F(CpuTest, LretRaisesGeneralProtectionFault) {
  emit(kCodeVirt, {nullary(Op::Lret)});
  const CpuEvent event = cpu.step();
  EXPECT_TRUE(event.trap_taken);
  EXPECT_EQ(event.trap, Trap::GpFault);
}

TEST_F(CpuTest, UserModePrivilegedInstructionsFault) {
  for (const Op op : {Op::Hlt, Op::Cli, Op::Sti, Op::In, Op::Iret}) {
    SCOPED_TRACE(static_cast<int>(op));
    emit_user(kUserCodeVirt, {nullary(op)});
    cpu.set_cpl(3);
    cpu.set_eip(kUserCodeVirt);
    cpu.set_reg(Reg::Esp, kUserStackTop - 16);
    const CpuEvent event = cpu.step();
    EXPECT_TRUE(event.trap_taken);
    EXPECT_EQ(event.trap, Trap::GpFault);
    EXPECT_EQ(cpu.cpl(), 0) << "trap handler runs in kernel mode";
    cpu.set_cpl(0);
  }
}

TEST_F(CpuTest, UserCannotTouchKernelMemory) {
  emit_user(kUserCodeVirt, {
    mov_ri(Reg::Ebx, static_cast<std::int32_t>(kDataVirt)),
    mem_op(Op::Mov, Reg::Eax, Reg::Ebx, 0, /*load=*/true),
  });
  cpu.set_cpl(3);
  cpu.set_eip(kUserCodeVirt);
  cpu.set_reg(Reg::Esp, kUserStackTop - 16);
  const CpuEvent event = run(2);
  EXPECT_TRUE(event.trap_taken);
  EXPECT_EQ(event.trap, Trap::PageFault);
  EXPECT_EQ(cpu.last_trap().error_code & kPfErrUser, kPfErrUser);
  EXPECT_EQ(cpu.last_trap().error_code & kPfErrPresent, kPfErrPresent);
}

TEST_F(CpuTest, SyscallFromUserSwitchesStackAndBack) {
  // User: int 0x80; kernel handler: iret.
  Instruction syscall_instr;
  syscall_instr.op = Op::Int;
  syscall_instr.imm8 = 0x80;
  emit_user(kUserCodeVirt, {mov_ri(Reg::Eax, 42), syscall_instr,
                            mov_ri(Reg::Ebx, 0x77)});
  emit(kHandlerVirt, {nullary(Op::Iret)});

  cpu.set_cpl(3);
  cpu.set_eip(kUserCodeVirt);
  cpu.set_reg(Reg::Esp, kUserStackTop - 32);

  cpu.step();  // mov eax,42
  CpuEvent event = cpu.step();  // int 0x80
  EXPECT_TRUE(event.trap_taken);
  EXPECT_EQ(cpu.cpl(), 0);
  EXPECT_EQ(cpu.eip(), kHandlerVirt);
  // Stack switched to esp0 minus the 6-word frame.
  EXPECT_EQ(cpu.reg(Reg::Esp), kBootStackTop - 24);

  cpu.step();  // iret
  EXPECT_EQ(cpu.cpl(), 3);
  EXPECT_EQ(cpu.reg(Reg::Esp), kUserStackTop - 32);
  cpu.step();  // mov ebx
  EXPECT_EQ(cpu.reg(Reg::Ebx), 0x77u);
  EXPECT_EQ(cpu.reg(Reg::Eax), 42u);
}

TEST_F(CpuTest, UserIntToKernelGateFaults) {
  Instruction bad_int;
  bad_int.op = Op::Int;
  bad_int.imm8 = 14;  // page-fault vector: DPL0
  emit_user(kUserCodeVirt, {bad_int});
  cpu.set_cpl(3);
  cpu.set_eip(kUserCodeVirt);
  cpu.set_reg(Reg::Esp, kUserStackTop - 16);
  const CpuEvent event = cpu.step();
  EXPECT_TRUE(event.trap_taken);
  EXPECT_EQ(event.trap, Trap::GpFault);
}

TEST_F(CpuTest, BreakpointFiresBeforeExecution) {
  emit(kCodeVirt, {mov_ri(Reg::Eax, 1), mov_ri(Reg::Ebx, 2)});
  cpu.arm_breakpoint(0, kCodeVirt + 5);  // second mov

  CpuEvent event = cpu.step();
  EXPECT_EQ(event.kind, CpuEventKind::Executed);
  EXPECT_EQ(cpu.reg(Reg::Eax), 1u);

  event = cpu.step();
  EXPECT_EQ(event.kind, CpuEventKind::Breakpoint);
  EXPECT_EQ(event.breakpoint_index, 0);
  EXPECT_EQ(cpu.reg(Reg::Ebx), 0u) << "instruction must not have executed";
  EXPECT_EQ(cpu.eip(), kCodeVirt + 5);

  event = cpu.step();  // resume: now it executes
  EXPECT_EQ(event.kind, CpuEventKind::Executed);
  EXPECT_EQ(cpu.reg(Reg::Ebx), 2u);
}

TEST_F(CpuTest, DisarmedBreakpointDoesNotFire) {
  emit(kCodeVirt, {mov_ri(Reg::Eax, 1)});
  cpu.arm_breakpoint(1, kCodeVirt);
  cpu.disarm_breakpoint(1);
  const CpuEvent event = cpu.step();
  EXPECT_EQ(event.kind, CpuEventKind::Executed);
}

TEST_F(CpuTest, DoubleFaultWhenNoHandlers) {
  for (int v = 0; v < 32; ++v) cpu.set_vector(v, 0);
  emit(kCodeVirt, {nullary(Op::Ud2)});
  const CpuEvent event = cpu.step();
  EXPECT_EQ(event.kind, CpuEventKind::DoubleFault);
  EXPECT_TRUE(cpu.dead());
  // Subsequent steps stay dead.
  EXPECT_EQ(cpu.step().kind, CpuEventKind::DoubleFault);
}

TEST_F(CpuTest, HltThenInterruptResumes) {
  emit(kCodeVirt, {nullary(Op::Sti), nullary(Op::Hlt)});
  emit(kHandlerVirt, {nullary(Op::Iret)});
  cpu.step();  // sti
  CpuEvent event = cpu.step();  // hlt
  EXPECT_EQ(event.kind, CpuEventKind::Halted);
  EXPECT_EQ(cpu.step().kind, CpuEventKind::Halted);

  EXPECT_TRUE(cpu.deliver_interrupt(Trap::Timer));
  EXPECT_EQ(cpu.eip(), kHandlerVirt);
  cpu.step();  // iret returns after the hlt
  EXPECT_EQ(cpu.step().kind, CpuEventKind::Executed);
}

TEST_F(CpuTest, InterruptMaskedWhenIfClear) {
  emit(kCodeVirt, {nullary(Op::Cli)});
  cpu.step();
  EXPECT_FALSE(cpu.deliver_interrupt(Trap::Timer));
}

TEST_F(CpuTest, MmioReadWrite32) {
  emit(kCodeVirt, {
    mov_ri(Reg::Ebx, static_cast<std::int32_t>(0xFF100000)),
    mov_ri(Reg::Eax, 0xCAFE),
    mem_op(Op::Mov, Reg::Eax, Reg::Ebx, 8, /*load=*/false),
    mem_op(Op::Mov, Reg::Ecx, Reg::Ebx, 4, /*load=*/true),
  });
  run(4);
  ASSERT_EQ(scratch.writes.size(), 1u);
  EXPECT_EQ(scratch.writes[0].first, 8u);
  EXPECT_EQ(scratch.writes[0].second, 0xCAFEu);
  EXPECT_EQ(cpu.reg(Reg::Ecx), 0xFEEDF00Du + 4);
}

TEST_F(CpuTest, MmioFromUserModeFaults) {
  emit_user(kUserCodeVirt, {
    mov_ri(Reg::Ebx, static_cast<std::int32_t>(0xFF100000)),
    mem_op(Op::Mov, Reg::Ecx, Reg::Ebx, 0, /*load=*/true),
  });
  cpu.set_cpl(3);
  cpu.set_eip(kUserCodeVirt);
  cpu.set_reg(Reg::Esp, kUserStackTop - 16);
  const CpuEvent event = run(2);
  EXPECT_TRUE(event.trap_taken);
  EXPECT_EQ(event.trap, Trap::PageFault);
}

TEST_F(CpuTest, UnclaimedMmioAddressIsGp) {
  emit(kCodeVirt, {
    mov_ri(Reg::Ebx, static_cast<std::int32_t>(0xFF700000)),
    mem_op(Op::Mov, Reg::Ecx, Reg::Ebx, 0, /*load=*/true),
  });
  const CpuEvent event = run(2);
  EXPECT_TRUE(event.trap_taken);
  EXPECT_EQ(event.trap, Trap::GpFault);
}

TEST_F(CpuTest, ByteOperationsPreserveUpperBits) {
  Instruction store8;
  store8.op = Op::Mov;
  isa::MemRef m;
  m.has_base = true;
  m.base = Reg::Ebx;
  m.disp = 0;
  store8.dst = Operand::make_mem(m, /*byte=*/true);
  store8.src = Operand::make_reg8(Reg::Eax);

  Instruction load8;
  load8.op = Op::Movzx8;
  load8.dst = Operand::make_reg(Reg::Ecx);
  load8.src = Operand::make_mem(m, /*byte=*/true);

  emit(kCodeVirt, {
    mov_ri(Reg::Ebx, static_cast<std::int32_t>(kDataVirt)),
    mov_ri(Reg::Eax, 0x11223344),
    store8,
    mov_ri(Reg::Ecx, 0xFFFFFFFF),
    load8,
  });
  run(5);
  EXPECT_EQ(cpu.reg(Reg::Ecx), 0x44u);
  EXPECT_EQ(memory.read8(phys_of_virt(kDataVirt)), 0x44);
}

TEST_F(CpuTest, ShiftFlagsAndResult) {
  Instruction shr;
  shr.op = Op::Shr;
  shr.dst = Operand::make_reg(Reg::Eax);
  shr.src = Operand::make_imm(12);
  emit(kCodeVirt, {mov_ri(Reg::Eax, 0x0000B728), shr});
  run(2);
  // The paper's case study: end_index = 0xB728 >> 12 = 0xB.
  EXPECT_EQ(cpu.reg(Reg::Eax), 0xBu);
}

TEST_F(CpuTest, CyclesAdvancePerInstruction) {
  emit(kCodeVirt, {mov_ri(Reg::Eax, 1), mov_ri(Reg::Eax, 2),
                   mov_ri(Reg::Eax, 3)});
  run(3);
  EXPECT_EQ(cpu.cycles(), 3u);
}

TEST_F(CpuTest, TrapRecordsCycleOfFault) {
  emit(kCodeVirt, {mov_ri(Reg::Eax, 1), nullary(Op::Ud2)});
  run(2);
  EXPECT_EQ(cpu.last_trap().cycle, 2u);
}

TEST_F(CpuTest, NegAndNot) {
  Instruction neg;
  neg.op = Op::Neg;
  neg.dst = Operand::make_reg(Reg::Eax);
  Instruction not_i;
  not_i.op = Op::Not;
  not_i.dst = Operand::make_reg(Reg::Ebx);
  emit(kCodeVirt, {mov_ri(Reg::Eax, 5), neg, mov_ri(Reg::Ebx, 0), not_i});
  run(4);
  EXPECT_EQ(cpu.reg(Reg::Eax), static_cast<std::uint32_t>(-5));
  EXPECT_TRUE(cpu.flags().cf);
  EXPECT_EQ(cpu.reg(Reg::Ebx), 0xFFFFFFFFu);
}

TEST_F(CpuTest, JmpIndirectThroughRegister) {
  Instruction jmp;
  jmp.op = Op::JmpInd;
  jmp.src = Operand::make_reg(Reg::Eax);
  emit(kCodeVirt, {mov_ri(Reg::Eax, static_cast<std::int32_t>(kHandlerVirt)),
                   jmp});
  run(2);
  EXPECT_EQ(cpu.eip(), kHandlerVirt);
}

TEST_F(CpuTest, CorruptedPointerJumpToUnmappedFaults) {
  Instruction jmp;
  jmp.op = Op::JmpInd;
  jmp.src = Operand::make_reg(Reg::Eax);
  emit(kCodeVirt, {mov_ri(Reg::Eax, 0x0000001B), jmp});
  CpuEvent event = run(2);
  EXPECT_EQ(event.kind, CpuEventKind::Executed);  // jmp itself is fine
  event = cpu.step();  // fetch from 0x1b faults
  EXPECT_TRUE(event.trap_taken);
  EXPECT_EQ(event.trap, Trap::PageFault);
  EXPECT_EQ(cpu.last_trap().fault_addr & ~0xFFFu, 0u);
}

}  // namespace
}  // namespace kfi::vm
