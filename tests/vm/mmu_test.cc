// MMU unit tests: two-level walks, permission bits, TLB behavior, and
// corrupted page-table handling.
#include "vm/mmu.h"

#include <gtest/gtest.h>

#include "vm/hostmap.h"

namespace kfi::vm {
namespace {

class MmuTest : public ::testing::Test {
 protected:
  MmuTest() : memory(kRamSize), mmu(memory) {
    mapper = std::make_unique<HostMapper>(memory, kBootPgdPhys,
                                          kKernelPtePhys);
    mmu.set_cr3(kBootPgdPhys);
  }

  TranslateStatus translate(std::uint32_t vaddr, Access access, int cpl,
                            std::uint32_t* paddr_out = nullptr) {
    std::uint32_t paddr = 0;
    const TranslateStatus status = mmu.translate(vaddr, access, cpl, paddr);
    if (paddr_out != nullptr) *paddr_out = paddr;
    return status;
  }

  PhysicalMemory memory;
  Mmu mmu;
  std::unique_ptr<HostMapper> mapper;
};

TEST_F(MmuTest, UnmappedIsNotPresent) {
  EXPECT_EQ(translate(0x12345000, Access::Read, 0),
            TranslateStatus::NotPresent);
}

TEST_F(MmuTest, BasicMapAndTranslate) {
  mapper->map(0x08048000, 0x00300000, kPteUser | kPteWrite);
  std::uint32_t paddr = 0;
  EXPECT_EQ(translate(0x08048123, Access::Read, 3, &paddr),
            TranslateStatus::Ok);
  EXPECT_EQ(paddr, 0x00300123u);
  EXPECT_EQ(translate(0x08048123, Access::Write, 3), TranslateStatus::Ok);
}

TEST_F(MmuTest, SupervisorPageRejectsUser) {
  mapper->map(0xC0100000, 0x00100000, kPteWrite);  // no kPteUser
  EXPECT_EQ(translate(0xC0100000, Access::Read, 3),
            TranslateStatus::Protection);
  EXPECT_EQ(translate(0xC0100000, Access::Read, 0), TranslateStatus::Ok);
}

TEST_F(MmuTest, ReadOnlyPageRejectsWrite) {
  mapper->map(0x08048000, 0x00300000, kPteUser);  // read-only
  EXPECT_EQ(translate(0x08048000, Access::Read, 3), TranslateStatus::Ok);
  EXPECT_EQ(translate(0x08048000, Access::Write, 3),
            TranslateStatus::Protection);
  EXPECT_EQ(translate(0x08048000, Access::Write, 0),
            TranslateStatus::Protection)
      << "the MMU enforces read-only for the kernel too (our COW relies "
         "on it)";
}

TEST_F(MmuTest, MmioWindowSupervisorOnly) {
  EXPECT_EQ(translate(kConsoleMmio, Access::Write, 0), TranslateStatus::Mmio);
  EXPECT_EQ(translate(kConsoleMmio, Access::Write, 3),
            TranslateStatus::Protection);
}

TEST_F(MmuTest, PtePointingOutsideRamIsBadPhysical) {
  mapper->map(0x08048000, 0x00300000, kPteUser);
  // Corrupt the PTE to point far outside RAM.
  const std::uint32_t pgd_entry = memory.read32(kBootPgdPhys + (0x08048000u >> 22) * 4);
  const std::uint32_t pte_slot =
      (pgd_entry & kPteFrameMask) + ((0x08048000u >> 12) & 0x3FF) * 4;
  memory.write32(pte_slot, 0x7FFFF000 | kPtePresent | kPteUser);
  mmu.flush_tlb();
  EXPECT_EQ(translate(0x08048000, Access::Read, 3),
            TranslateStatus::BadPhysical);
}

TEST_F(MmuTest, TlbCachesUntilFlushed) {
  mapper->map(0x08048000, 0x00300000, kPteUser | kPteWrite);
  EXPECT_EQ(translate(0x08048000, Access::Read, 3), TranslateStatus::Ok);

  // Change the PTE behind the TLB's back: stale entry still hits.
  const std::uint32_t pgd_entry = memory.read32(kBootPgdPhys + (0x08048000u >> 22) * 4);
  const std::uint32_t pte_slot =
      (pgd_entry & kPteFrameMask) + ((0x08048000u >> 12) & 0x3FF) * 4;
  memory.write32(pte_slot, 0);
  EXPECT_EQ(translate(0x08048000, Access::Read, 3), TranslateStatus::Ok)
      << "stale TLB entry must persist until an explicit flush";

  mmu.flush_page(0x08048000);
  EXPECT_EQ(translate(0x08048000, Access::Read, 3),
            TranslateStatus::NotPresent);
}

TEST_F(MmuTest, FlushPageOnlyDropsThatPage) {
  mapper->map(0x08048000, 0x00300000, kPteUser);
  mapper->map(0x08049000, 0x00301000, kPteUser);
  EXPECT_EQ(translate(0x08048000, Access::Read, 3), TranslateStatus::Ok);
  EXPECT_EQ(translate(0x08049000, Access::Read, 3), TranslateStatus::Ok);

  // Zap both PTEs; flush only the first page.
  const std::uint32_t pgd_entry = memory.read32(kBootPgdPhys + (0x08048000u >> 22) * 4);
  const std::uint32_t pte_base = pgd_entry & kPteFrameMask;
  memory.write32(pte_base + ((0x08048000u >> 12) & 0x3FF) * 4, 0);
  memory.write32(pte_base + ((0x08049000u >> 12) & 0x3FF) * 4, 0);
  mmu.flush_page(0x08048000);

  EXPECT_EQ(translate(0x08048000, Access::Read, 3),
            TranslateStatus::NotPresent);
  EXPECT_EQ(translate(0x08049000, Access::Read, 3), TranslateStatus::Ok)
      << "second page's stale TLB entry should survive";
}

TEST_F(MmuTest, SetCr3FlushesEverything) {
  mapper->map(0x08048000, 0x00300000, kPteUser);
  EXPECT_EQ(translate(0x08048000, Access::Read, 3), TranslateStatus::Ok);
  const std::uint32_t pgd_entry = memory.read32(kBootPgdPhys + (0x08048000u >> 22) * 4);
  memory.write32((pgd_entry & kPteFrameMask) +
                     ((0x08048000u >> 12) & 0x3FF) * 4,
                 0);
  mmu.set_cr3(kBootPgdPhys);  // reload = full flush
  EXPECT_EQ(translate(0x08048000, Access::Read, 3),
            TranslateStatus::NotPresent);
}

TEST_F(MmuTest, CorruptCr3OutsideRamIsBadPhysical) {
  mmu.set_cr3(0x7F000000);
  EXPECT_EQ(translate(0x08048000, Access::Read, 3),
            TranslateStatus::BadPhysical);
}

TEST_F(MmuTest, PgdLevelUserBitGatesUserAccess) {
  // Map with a user PTE, then clear the PGD's user bit: user access
  // must fault (both levels are checked, as on IA-32).
  mapper->map(0x08048000, 0x00300000, kPteUser);
  const std::uint32_t pgd_slot = kBootPgdPhys + (0x08048000u >> 22) * 4;
  memory.write32(pgd_slot, memory.read32(pgd_slot) & ~kPteUser);
  mmu.flush_tlb();
  EXPECT_EQ(translate(0x08048000, Access::Read, 3),
            TranslateStatus::Protection);
  EXPECT_EQ(translate(0x08048000, Access::Read, 0), TranslateStatus::Ok);
}

}  // namespace
}  // namespace kfi::vm
