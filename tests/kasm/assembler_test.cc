// Assembler tests: encoding fidelity, label resolution, relaxation,
// relocations, linking — and an end-to-end "assemble and execute" check.
#include "kasm/assembler.h"

#include <gtest/gtest.h>

#include "isa/decode.h"
#include "isa/disasm.h"
#include "support/strings.h"
#include "vm/cpu.h"
#include "vm/hostmap.h"

namespace kfi::kasm {
namespace {

AsmUnit must_assemble(std::string_view src, std::uint32_t base = 0x1000) {
  AsmResult r = assemble(src, base);
  EXPECT_TRUE(r.ok) << (r.errors.empty() ? "?" : r.errors[0]);
  return r.unit;
}

TEST(Assembler, EncodesPaperByteSequences) {
  // The exact encodings the paper's Table 7 shows.
  const AsmUnit unit = must_assemble(R"(
    test %edx, %edx
    xor %edx, %edx
    mov 0xc(%ecx), %edx
    movzbl 0x1b(%edx), %eax
    ud2a
  )");
  EXPECT_EQ(hex_bytes(unit.bytes),
            "85 d2 31 d2 8b 51 0c 0f b6 42 1b 0f 0b");
}

TEST(Assembler, ShortBranchBackward) {
  const AsmUnit unit = must_assemble(R"(
  loop:
    dec %eax
    jne loop
    ret
  )");
  // dec eax = 48; jne rel8 = 75 FD (back 3).
  EXPECT_EQ(hex_bytes(unit.bytes), "48 75 fd c3");
}

TEST(Assembler, ForwardBranchResolved) {
  const AsmUnit unit = must_assemble(R"(
    cmp %eax, %ebx
    je out
    inc %ecx
  out:
    ret
  )");
  // 39 c3 / 74 01 / 41 / c3
  EXPECT_EQ(hex_bytes(unit.bytes), "39 c3 74 01 41 c3");
}

TEST(Assembler, LongBranchRelaxation) {
  std::string src = "  je far_away\n";
  for (int i = 0; i < 200; ++i) src += "  nop\n";
  src += "far_away:\n  ret\n";
  const AsmUnit unit = must_assemble(src);
  // je must have grown to the 6-byte form: 0F 84 c8 00 00 00.
  EXPECT_EQ(unit.bytes[0], 0x0F);
  EXPECT_EQ(unit.bytes[1], 0x84);
  const std::uint32_t rel = unit.bytes[2] | (unit.bytes[3] << 8);
  EXPECT_EQ(rel, 200u);
}

TEST(Assembler, CallLocalIsRel32) {
  const AsmUnit unit = must_assemble(R"(
    call f
  f:
    ret
  )");
  EXPECT_EQ(hex_bytes(unit.bytes), "e8 00 00 00 00 c3");
}

TEST(Assembler, SymbolsGetBaseAddedAddresses) {
  const AsmUnit unit = must_assemble(R"(
    nop
  entry:
    ret
  )", 0xC0105000);
  ASSERT_EQ(unit.symbols.count("entry"), 1u);
  EXPECT_EQ(unit.symbols.at("entry"), 0xC0105001u);
}

TEST(Assembler, FuncRangesRecorded) {
  const AsmUnit unit = must_assemble(R"(
  .func foo
  foo:
    nop
    ret
  .endfunc
  .func bar
  bar:
    ret
  .endfunc
  )");
  ASSERT_EQ(unit.functions.size(), 2u);
  EXPECT_EQ(unit.functions[0].name, "foo");
  EXPECT_EQ(unit.functions[0].start, 0u);
  EXPECT_EQ(unit.functions[0].end, 2u);
  EXPECT_EQ(unit.functions[1].start, 2u);
  EXPECT_EQ(unit.functions[1].end, 3u);
}

TEST(Assembler, DataDirectives) {
  const AsmUnit unit = must_assemble(R"(
    .word 0x12345678
    .byte 0xAB
    .space 3
    .ascii "hi\n"
  )");
  EXPECT_EQ(hex_bytes(unit.bytes), "78 56 34 12 ab 00 00 00 68 69 0a");
}

TEST(Assembler, ImmediateSymbolBecomesReloc) {
  const AsmUnit unit = must_assemble("  mov $counter, %eax\n");
  ASSERT_EQ(unit.relocs.size(), 1u);
  EXPECT_EQ(unit.relocs[0].symbol, "counter");
  EXPECT_EQ(unit.relocs[0].kind, RelocKind::Abs32);
  EXPECT_EQ(unit.relocs[0].offset, 1u);  // B8 <imm32>
}

TEST(Assembler, AbsoluteMemorySymbolBecomesReloc) {
  const AsmUnit unit = must_assemble("  mov counter, %eax\n");
  ASSERT_EQ(unit.relocs.size(), 1u);
  EXPECT_EQ(unit.relocs[0].offset, 2u);  // 8B 05 <disp32>
}

TEST(Assembler, ExternalCallBecomesRel32Reloc) {
  const AsmUnit unit = must_assemble("  call do_page_fault\n  ret\n");
  ASSERT_EQ(unit.relocs.size(), 1u);
  EXPECT_EQ(unit.relocs[0].kind, RelocKind::Rel32);
  EXPECT_EQ(unit.relocs[0].offset, 1u);
}

TEST(Assembler, JccToExternalIsError) {
  const AsmResult r = assemble("  je somewhere_else\n", 0);
  EXPECT_FALSE(r.ok);
  ASSERT_FALSE(r.errors.empty());
  EXPECT_NE(r.errors[0].find("external"), std::string::npos);
}

TEST(Assembler, ErrorsCarryLineNumbers) {
  const AsmResult r = assemble("  nop\n  bogus %eax\n", 0);
  EXPECT_FALSE(r.ok);
  ASSERT_FALSE(r.errors.empty());
  EXPECT_NE(r.errors[0].find("line 2"), std::string::npos);
}

TEST(Assembler, DuplicateLabelIsError) {
  const AsmResult r = assemble("x:\n  nop\nx:\n", 0);
  EXPECT_FALSE(r.ok);
}

TEST(Assembler, CommentsAndBlankLines) {
  const AsmUnit unit = must_assemble(R"(
    ; full line comment
    nop          ; trailing
    nop          // c++ style

  )");
  EXPECT_EQ(unit.bytes.size(), 2u);
}

TEST(Assembler, IndirectCallAndJump) {
  const AsmUnit unit = must_assemble("  call *%eax\n  jmp *%ebx\n");
  EXPECT_EQ(hex_bytes(unit.bytes), "ff d0 ff e3");
}

TEST(Assembler, PushForms) {
  const AsmUnit unit = must_assemble(R"(
    push %ebp
    push $4
    push $300
    push 8(%ebp)
  )");
  EXPECT_EQ(hex_bytes(unit.bytes), "55 6a 04 68 2c 01 00 00 ff 75 08");
}

TEST(Assembler, ShiftForms) {
  const AsmUnit unit = must_assemble(R"(
    shl $1, %eax
    shr $12, %eax
    sar %cl, %edx
  )");
  EXPECT_EQ(hex_bytes(unit.bytes), "d1 e0 c1 e8 0c d3 fa");
}

TEST(Assembler, ByteMoves) {
  const AsmUnit unit = must_assemble(R"(
    movb %al, 3(%esi)
    movb $7, (%edi)
    movzbl (%esi), %ecx
  )");
  EXPECT_EQ(hex_bytes(unit.bytes), "88 46 03 c6 07 07 0f b6 0e");
}

TEST(Linker, ResolvesCrossUnitCallsAndData) {
  AsmResult a = assemble(R"(
  .func caller
  caller:
    call callee
    mov shared_counter, %eax
    ret
  .endfunc
  )", 0x1000);
  AsmResult b = assemble(R"(
  .func callee
  callee:
    ret
  .endfunc
  shared_counter:
    .word 99
  )", 0x2000);
  ASSERT_TRUE(a.ok && b.ok);

  std::vector<AsmUnit> units{a.unit, b.unit};
  const LinkResult linked = link(units);
  ASSERT_TRUE(linked.ok) << (linked.errors.empty() ? "?" : linked.errors[0]);

  // call rel32 at unit A offset 1: target 0x2000, next = 0x1005.
  std::uint32_t rel = 0;
  for (int i = 0; i < 4; ++i) rel |= units[0].bytes[1 + i] << (8 * i);
  EXPECT_EQ(rel, 0x2000u - 0x1005u);

  // mov disp32 patched to 0x2001 (after callee's ret).
  std::uint32_t disp = 0;
  for (int i = 0; i < 4; ++i) disp |= units[0].bytes[7 + i] << (8 * i);
  EXPECT_EQ(disp, 0x2001u);
}

TEST(Linker, MissingSymbolReported) {
  AsmResult a = assemble("  call nowhere\n", 0x1000);
  ASSERT_TRUE(a.ok);
  std::vector<AsmUnit> units{a.unit};
  const LinkResult linked = link(units);
  EXPECT_FALSE(linked.ok);
}

TEST(Linker, DuplicateSymbolReported) {
  AsmResult a = assemble("x:\n  nop\n", 0x1000);
  AsmResult b = assemble("x:\n  nop\n", 0x2000);
  ASSERT_TRUE(a.ok && b.ok);
  std::vector<AsmUnit> units{a.unit, b.unit};
  const LinkResult linked = link(units);
  EXPECT_FALSE(linked.ok);
}

// End to end: assemble a function, load it into the VM, run it.
TEST(Assembler, AssembledCodeExecutes) {
  const AsmUnit unit = must_assemble(R"(
  ; sum 1..5 into eax
    mov $0, %eax
    mov $5, %ecx
  loop:
    add %ecx, %eax
    dec %ecx
    jne loop
    hlt
  )", 0xC0105000);

  vm::PhysicalMemory memory(vm::kRamSize);
  vm::Bus bus;
  vm::Cpu cpu(memory, bus);
  vm::HostMapper mapper(memory, vm::kBootPgdPhys, vm::kKernelPtePhys);
  mapper.map_range(vm::kKernelBase, 0, vm::kRamSize, vm::kPteWrite);
  cpu.mmu().set_cr3(vm::kBootPgdPhys);
  memory.write_block(vm::phys_of_virt(0xC0105000),
                     unit.bytes.data(),
                     static_cast<std::uint32_t>(unit.bytes.size()));
  cpu.set_eip(0xC0105000);
  cpu.set_reg(isa::Reg::Esp, vm::kBootStackTop);

  for (int i = 0; i < 100; ++i) {
    if (cpu.step().kind == vm::CpuEventKind::Halted) break;
  }
  EXPECT_EQ(cpu.reg(isa::Reg::Eax), 15u);
}

// Property: every assembled instruction disassembles back (no "(bad)").
TEST(Assembler, AllEmittedBytesDisassemble) {
  const AsmUnit unit = must_assemble(R"(
    mov $1, %eax
    mov %eax, 8(%ebp)
    add $4, %esp
    cmp $0, %eax
    je done
    call done
    push %esi
    pop %edi
    test %eax, %eax
    lea 8(%ebx), %ecx
    imul %edx, %eax
    not %eax
    neg %ecx
    cdq
    idiv %ecx
  done:
    leave
    ret
  )");
  std::size_t pos = 0;
  while (pos < unit.bytes.size()) {
    std::size_t len = 0;
    const std::string text = isa::disassemble_bytes(
        unit.bytes.data() + pos, unit.bytes.size() - pos,
        unit.base + static_cast<std::uint32_t>(pos), &len);
    EXPECT_NE(text, "(bad)") << "at offset " << pos;
    ASSERT_GT(len, 0u);
    pos += len;
  }
}

}  // namespace
}  // namespace kfi::kasm
