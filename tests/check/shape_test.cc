// Shape-oracle tests: the tier-1 smoke campaign against the smoke
// expectations, the demonstration that a perturbed distribution fails
// the oracles, and unit coverage of the predicate primitives.
#include "check/shape.h"

#include <gtest/gtest.h>

#include "check/expectations.h"
#include "inject/injector.h"
#include "profile/profile.h"

namespace kfi::check {
namespace {

using inject::Campaign;
using inject::CampaignRun;
using inject::CrashCause;
using inject::InjectionResult;
using inject::Outcome;
using kernel::Subsystem;

// A synthetic campaign run with a known, healthy distribution: 100
// injected into fs, 90 activated: 25 not manifested, 10 fail silence,
// 55 crash (45 null-ptr/paging/inv-op/gp + 10 in "other" causes would
// break top4, so all 55 use the four dominant causes).
CampaignRun fixture_run() {
  CampaignRun run;
  run.campaign = Campaign::RandomNonBranch;
  run.functions_targeted = 1;
  const auto push = [&run](Outcome outcome, CrashCause cause,
                           Subsystem crash_in, int n) {
    for (int i = 0; i < n; ++i) {
      InjectionResult r;
      r.spec.campaign = Campaign::RandomNonBranch;
      r.spec.function = "pipe_read";
      r.spec.subsystem = Subsystem::Fs;
      r.spec.workload = "pipe";
      r.outcome = outcome;
      if (outcome == Outcome::DumpedCrash) {
        r.cause = cause;
        r.crash_subsystem = crash_in;
        r.propagated = crash_in != Subsystem::Fs;
        r.latency_cycles = 5;
        r.severity = inject::Severity::Normal;
      }
      run.results.push_back(r);
    }
  };
  push(Outcome::NotActivated, CrashCause::Other, Subsystem::Unknown, 10);
  push(Outcome::NotManifested, CrashCause::Other, Subsystem::Unknown, 25);
  push(Outcome::FailSilenceViolation, CrashCause::Other, Subsystem::Unknown,
       10);
  push(Outcome::DumpedCrash, CrashCause::NullPointer, Subsystem::Fs, 20);
  push(Outcome::DumpedCrash, CrashCause::PagingRequest, Subsystem::Fs, 15);
  push(Outcome::DumpedCrash, CrashCause::InvalidOpcode, Subsystem::Fs, 12);
  push(Outcome::DumpedCrash, CrashCause::GpFault, Subsystem::Kernel, 3);
  push(Outcome::HangUnknown, CrashCause::Other, Subsystem::Unknown, 5);
  return run;
}

// The healthy-fixture expectations (Figure 4 / 6 / 8 style bands that
// the fixture satisfies by construction).
OutcomeShape fixture_outcome_shape() {
  OutcomeShape shape;
  shape.name = "fixture";
  shape.activated = {0.80, 1.0};
  shape.not_manifested = {0.15, 0.40};
  shape.fail_silence = {0.05, 0.20};
  shape.crash_hang = {0.50, 0.80};
  shape.expect_crash_hang_dominant = true;
  return shape;
}

TEST(check_shape_unit, BandContains) {
  const Band band{0.2, 0.4};
  EXPECT_TRUE(band.contains(0.2));
  EXPECT_TRUE(band.contains(0.4));
  EXPECT_FALSE(band.contains(0.19));
  EXPECT_FALSE(band.contains(0.41));
}

TEST(check_shape_unit, CheckBandPassAndFail) {
  EXPECT_TRUE(check_band("x", 0.5, {0.4, 0.6}, "").pass);
  EXPECT_FALSE(check_band("x", 0.7, {0.4, 0.6}, "").pass);
}

TEST(check_shape_unit, ArgmaxDetectsWinnerAndTies) {
  EXPECT_TRUE(check_argmax("x", {{"a", 0.6}, {"b", 0.3}}, "a", "").pass);
  EXPECT_FALSE(check_argmax("x", {{"a", 0.3}, {"b", 0.6}}, "a", "").pass);
  // A tie has no strict winner.
  EXPECT_FALSE(check_argmax("x", {{"a", 0.5}, {"b", 0.5}}, "a", "").pass);
}

TEST(check_shape_unit, ArgminDetectsLoser) {
  EXPECT_TRUE(check_argmin("x", {{"a", 0.1}, {"b", 0.6}}, "a", "").pass);
  EXPECT_FALSE(check_argmin("x", {{"a", 0.6}, {"b", 0.1}}, "a", "").pass);
}

TEST(check_shape_unit, OutcomeShapeEvaluatesFixture) {
  const CampaignRun run = fixture_run();
  const auto checks =
      fixture_outcome_shape().evaluate(analysis::make_outcome_table(run));
  ASSERT_EQ(checks.size(), 5u);
  for (const CheckResult& check : checks) {
    EXPECT_TRUE(check.pass) << check.oracle << ": " << check.detail;
  }
}

TEST(check_shape_unit, CauseShapeTop4AndPlurality) {
  const CampaignRun run = fixture_run();
  CauseShape shape;
  shape.name = "fixture";
  shape.top4 = {0.95, 1.0};
  shape.dominant_cause = CrashCause::NullPointer;
  shape.dominant_share = {0.3, 0.5};
  const auto checks = shape.evaluate(analysis::make_crash_causes(run));
  ASSERT_EQ(checks.size(), 3u);
  for (const CheckResult& check : checks) {
    EXPECT_TRUE(check.pass) << check.oracle << ": " << check.detail;
  }
}

TEST(check_shape_unit, PropagationShapeSelfShareAndSmallSampleSkip) {
  const CampaignRun run = fixture_run();
  PropagationShape shape{"fixture", {0.90, 1.0}, 10};
  const auto graph = analysis::make_propagation(run, Subsystem::Fs);
  const auto checks = shape.evaluate(graph);
  ASSERT_EQ(checks.size(), 1u);
  // 47 of 50 fs-injected crashes stay in fs = 0.94.
  EXPECT_TRUE(checks[0].pass) << checks[0].detail;

  // Below min_crashes the oracle records an automatic pass.
  PropagationShape strict{"fixture.tiny", {0.99, 1.0}, 1000};
  const auto skipped = strict.evaluate(graph);
  ASSERT_EQ(skipped.size(), 1u);
  EXPECT_TRUE(skipped[0].pass);
}

TEST(check_shape_unit, SeverityShapeFlagsUnverifiedRepairs) {
  CampaignRun run = fixture_run();
  // Grade two crashes severe; only one verified repairable.
  run.results[50].severity = inject::Severity::Severe;
  run.results[50].repair_verified = true;
  run.results[51].severity = inject::Severity::Severe;
  run.results[51].repair_verified = false;

  SeverityShape shape;
  shape.name = "fixture";
  shape.severe_rate = {0.0, 0.10};
  shape.most_severe_rate = {0.0, 0.01};
  const auto checks =
      shape.evaluate(run, analysis::make_severity(run));
  ASSERT_EQ(checks.size(), 3u);
  EXPECT_TRUE(checks[0].pass);
  EXPECT_TRUE(checks[1].pass);
  EXPECT_FALSE(checks[2].pass) << "one unverified severe case must fail";
}

TEST(check_shape_unit, ShortLatencyShare) {
  CampaignRun run = fixture_run();
  EXPECT_DOUBLE_EQ(short_latency_share(run, 10), 1.0);
  run.results.back().outcome = Outcome::DumpedCrash;
  run.results.back().latency_cycles = 1000;
  EXPECT_NEAR(short_latency_share(run, 10), 50.0 / 51.0, 1e-9);
}

TEST(check_shape_unit, RenderReportListsFailures) {
  ShapeReport report;
  report.add(check_band("good", 0.5, {0.0, 1.0}, ""));
  report.add(check_band("bad", 0.5, {0.6, 1.0}, "too small"));
  EXPECT_FALSE(report.all_pass());
  EXPECT_EQ(report.failures(), 1u);
  const std::string text = render_report(report);
  EXPECT_NE(text.find("[PASS] good"), std::string::npos);
  EXPECT_NE(text.find("[FAIL] bad"), std::string::npos);
  EXPECT_NE(text.find("too small"), std::string::npos);
}

// ---- the tier-1 smoke campaign ----

// The acceptance property: a deliberately perturbed distribution — the
// kind of silent shift a VM or campaign-engine regression would cause —
// violates the oracle tolerances.  The fixture satisfies the bands by
// construction; reclassifying its crashes as not-manifested (exactly
// what a broken trigger or a lost crash report would look like) must
// fail them.
TEST(check_shape_smoke, PerturbedFixtureViolatesTolerance) {
  const OutcomeShape shape = fixture_outcome_shape();

  CampaignRun healthy = fixture_run();
  ShapeReport before;
  before.add(shape.evaluate(analysis::make_outcome_table(healthy)));
  ASSERT_TRUE(before.all_pass()) << render_report(before);

  CampaignRun perturbed = fixture_run();
  for (InjectionResult& r : perturbed.results) {
    if (r.outcome == Outcome::DumpedCrash ||
        r.outcome == Outcome::HangUnknown) {
      r.outcome = Outcome::NotManifested;
    }
  }
  ShapeReport after;
  after.add(shape.evaluate(analysis::make_outcome_table(perturbed)));
  EXPECT_FALSE(after.all_pass())
      << "perturbed distribution must violate the tolerance bands:\n"
      << render_report(after);
  // Both the band checks and the dominance claim notice.
  bool crash_hang_failed = false;
  bool dominance_failed = false;
  for (const CheckResult& check : after.checks) {
    if (check.oracle == "fixture.crash_hang") {
      crash_hang_failed = !check.pass;
    }
    if (check.oracle == "fixture.crash_hang_dominates") {
      dominance_failed = !check.pass;
    }
  }
  EXPECT_TRUE(crash_hang_failed);
  EXPECT_TRUE(dominance_failed);
}

// Live smoke campaigns (A and C over the fixed smoke function lists)
// against the smoke expectations — the tier-1 guardrail itself.
TEST(check_shape_smoke, OraclesPassOnLiveSmokeCampaigns) {
  inject::Injector injector;
  const auto& prof = profile::default_profile();
  const CampaignRun a = inject::run_campaign(
      injector, prof, smoke_config(Campaign::RandomNonBranch));
  const CampaignRun c = inject::run_campaign(
      injector, prof, smoke_config(Campaign::IncorrectBranch));
  ASSERT_GT(a.results.size(), 100u);
  ASSERT_GT(c.results.size(), 10u);

  const ShapeReport report = evaluate_smoke(a, c);
  EXPECT_TRUE(report.all_pass()) << render_report(report);
}

}  // namespace
}  // namespace kfi::check
