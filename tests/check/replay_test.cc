// Deterministic single-run replay against the committed campaign
// artifacts: every sampled injection from a persisted .kfi file must
// reproduce bit-for-bit on a freshly constructed injector, and the
// persisted specs must regenerate from (campaign, seed, repeats).
#include "check/replay.h"

#include <gtest/gtest.h>

#include <set>

#include "analysis/io.h"
#include "check/expectations.h"
#include "profile/profile.h"

#ifndef KFI_SOURCE_DIR
#define KFI_SOURCE_DIR "."
#endif

namespace kfi::check {
namespace {

using inject::Campaign;
using inject::CampaignRun;
using inject::InjectionResult;
using inject::Outcome;

// The committed campaign-C artifact (the smallest of the three caches;
// 285 results at seed 2003).  Its file name embeds the kernel
// fingerprint, so a mismatch means the kernel changed without the
// caches being regenerated — which must fail loudly, not skip.
std::string campaign_c_path() {
  return analysis::campaign_cache_path(std::string(KFI_SOURCE_DIR) +
                                           "/kfi-results",
                                       Campaign::IncorrectBranch, 1, 2003,
                                       kernel::built_kernel());
}

TEST(check_replay, DiffResultsFindsEveryFieldChange) {
  InjectionResult a;
  a.spec.function = "pipe_read";
  a.spec.workload = "pipe";
  a.outcome = Outcome::DumpedCrash;
  a.latency_cycles = 7;
  a.disasm_after = "jne c0134580";
  InjectionResult b = a;
  EXPECT_TRUE(diff_results(a, b).empty());

  b.outcome = Outcome::NotManifested;
  b.latency_cycles = 8;
  b.disasm_after = "je c0134580";
  const auto diffs = diff_results(a, b);
  ASSERT_EQ(diffs.size(), 3u);
  std::set<std::string> fields;
  for (const FieldDiff& diff : diffs) fields.insert(diff.field);
  EXPECT_TRUE(fields.count("outcome"));
  EXPECT_TRUE(fields.count("latency_cycles"));
  EXPECT_TRUE(fields.count("disasm_after"));
}

TEST(check_replay, SampleIndicesCoverEachOutcomeOnce) {
  CampaignRun run;
  for (const Outcome outcome :
       {Outcome::NotActivated, Outcome::NotManifested, Outcome::NotManifested,
        Outcome::DumpedCrash, Outcome::FailSilenceViolation,
        Outcome::DumpedCrash}) {
    InjectionResult r;
    r.outcome = outcome;
    run.results.push_back(r);
  }
  const auto indices = sample_indices(run, 1);
  ASSERT_EQ(indices.size(), 4u);  // one per distinct outcome
  std::set<Outcome> outcomes;
  for (const std::size_t i : indices) outcomes.insert(run.results[i].outcome);
  EXPECT_EQ(outcomes.size(), 4u);

  EXPECT_EQ(sample_indices(run, 2).size(), 6u);
}

// The headline acceptance property: replaying persisted runs — at
// least one crash, one not-manifested, and one fail-silence violation —
// reproduces the recorded InjectionResult bit-for-bit.
TEST(check_replay, CommittedCampaignCReplaysBitForBit) {
  const std::string path = campaign_c_path();
  const auto run = analysis::load_campaign(path);
  ASSERT_TRUE(run.has_value())
      << "cannot load " << path
      << " — if the kernel image changed, regenerate the kfi-results"
         " caches (see EXPERIMENTS.md, 'Verifying a change')";

  inject::Injector injector;
  const ReplayReport report = replay_samples(injector, *run, 1);
  ASSERT_GE(report.replays.size(), 3u);

  std::set<Outcome> replayed_outcomes;
  for (const ReplayOutcome& replay : report.replays) {
    replayed_outcomes.insert(replay.recorded.outcome);
    EXPECT_TRUE(replay.identical())
        << "run #" << replay.index << " (" << replay.recorded.spec.function
        << ") did not reproduce:\n"
        << render_replay(report);
  }
  // Campaign C's distribution guarantees all three headline categories.
  EXPECT_TRUE(replayed_outcomes.count(Outcome::DumpedCrash));
  EXPECT_TRUE(replayed_outcomes.count(Outcome::NotManifested));
  EXPECT_TRUE(replayed_outcomes.count(Outcome::FailSilenceViolation));
}

// (campaign, seed, repeats) fully determines the target list, so the
// persisted specs must match a regenerated list index-for-index — the
// other half of the replay coordinate.
TEST(check_replay, CommittedSpecsRegenerateFromSeed) {
  const auto run = analysis::load_campaign(campaign_c_path());
  ASSERT_TRUE(run.has_value());

  inject::CampaignConfig config;
  config.campaign = Campaign::IncorrectBranch;
  config.seed = 2003;
  config.repeats = 1;
  std::size_t functions_targeted = 0;
  const auto targets = inject::campaign_targets(profile::default_profile(),
                                                config, &functions_targeted);
  ASSERT_EQ(targets.size(), run->results.size());
  EXPECT_EQ(functions_targeted, run->functions_targeted);
  for (std::size_t i = 0; i < targets.size(); ++i) {
    const auto diffs = diff_specs(run->results[i].spec, targets[i]);
    ASSERT_TRUE(diffs.empty())
        << "spec #" << i << " field '" << diffs[0].field << "': recorded "
        << diffs[0].recorded << ", regenerated " << diffs[0].replayed;
  }
}

}  // namespace
}  // namespace kfi::check
