// Schedule-independence and machine-state determinism: the
// CampaignConfig.threads contract ("results are identical regardless of
// thread count") and the snapshot-restore property replay rests on.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "check/expectations.h"
#include "check/replay.h"
#include "inject/campaign.h"
#include "inject/injector.h"
#include "machine/machine.h"
#include "profile/profile.h"
#include "workloads/workloads.h"

namespace kfi::check {
namespace {

using inject::Campaign;
using inject::CampaignRun;

TEST(check_determinism, CompareRunsFindsDivergence) {
  CampaignRun x;
  inject::InjectionResult r;
  r.spec.function = "pipe_read";
  r.outcome = inject::Outcome::DumpedCrash;
  x.results.push_back(r);
  CampaignRun y = x;
  EXPECT_TRUE(compare_runs(x, y).identical());

  y.results[0].outcome = inject::Outcome::NotManifested;
  const RunComparison diverged = compare_runs(x, y);
  EXPECT_FALSE(diverged.identical());
  ASSERT_EQ(diverged.mismatches.size(), 1u);
  EXPECT_EQ(diverged.mismatches[0].first, 0u);

  y.results.push_back(r);
  EXPECT_TRUE(compare_runs(x, y).size_mismatch);
}

// The CampaignConfig.threads contract: each worker owns a private
// Injector, so the result vector is a pure function of the target list.
TEST(check_determinism, ThreadCountDoesNotChangeResults) {
  const auto& prof = profile::default_profile();
  inject::CampaignConfig config = smoke_config(Campaign::IncorrectBranch);

  inject::Injector serial;
  config.threads = 1;
  const CampaignRun one = inject::run_campaign(serial, prof, config);

  inject::Injector threaded;
  config.threads = 4;
  const CampaignRun four = inject::run_campaign(threaded, prof, config);

  ASSERT_GT(one.results.size(), 10u);
  const RunComparison comparison = compare_runs(one, four);
  EXPECT_FALSE(comparison.size_mismatch);
  EXPECT_TRUE(comparison.identical())
      << comparison.mismatches.size() << " of " << comparison.compared
      << " results differ between threads=1 and threads=4; first at #"
      << (comparison.mismatches.empty() ? 0 : comparison.mismatches[0].first);
}

// The stronger shared-cache contract: threads=1 and threads=4 borrowing
// the *same* GoldenCache (so worker machines adopt one shared BootState
// and resume from one shared ladder) produce identical result vectors,
// under every execution engine tier from stepping to memfast.
TEST(check_determinism, SharedCacheThreadCountIdenticalBothEngines) {
  const auto& prof = profile::default_profile();
  inject::CampaignConfig config = smoke_config(Campaign::RandomNonBranch);

  std::vector<CampaignRun> runs;
  for (const machine::ExecEngine engine :
       {machine::ExecEngine::Step, machine::ExecEngine::Block,
        machine::ExecEngine::Chained, machine::ExecEngine::Memfast}) {
    inject::InjectorOptions options;
    options.exec_engine = engine;
    auto cache = std::make_shared<inject::GoldenCache>(options);
    for (const unsigned threads : {1u, 4u}) {
      inject::Injector injector(cache);
      config.threads = threads;
      runs.push_back(inject::run_campaign(injector, prof, config));
      EXPECT_EQ(runs.back().stats.threads_used, threads);
      EXPECT_EQ(runs.back().stats.runs, runs.back().results.size());
    }
  }
  ASSERT_EQ(runs.size(), 8u);
  ASSERT_GT(runs[0].results.size(), 10u);
  for (std::size_t i = 1; i < runs.size(); ++i) {
    const RunComparison comparison = compare_runs(runs[0], runs[i]);
    EXPECT_FALSE(comparison.size_mismatch);
    EXPECT_TRUE(comparison.identical())
        << comparison.mismatches.size() << " of " << comparison.compared
        << " results differ between run 0 and run " << i;
  }
}

// Machine::state_digest covers every bit of machine state, and
// snapshot-restore brings all of it back: two identical runs from the
// same snapshot digest identically, and the digest is sensitive to a
// single flipped bit.
TEST(check_determinism, StateDigestReproducesAcrossRestore) {
  const disk::DiskImage root_disk = machine::make_root_disk();
  machine::Machine machine(kernel::built_kernel(),
                           workloads::built_workload("pipe"), root_disk);
  ASSERT_TRUE(machine.boot());
  // Enter the canonical post-restore state first (boot() leaves the
  // timer mid-phase; the injector always restore()s before running).
  machine.restore();
  const std::uint64_t boot_digest = machine.state_digest();

  machine.run(2'000'000);
  const std::uint64_t first_run = machine.state_digest();
  EXPECT_NE(first_run, boot_digest) << "running must change state";

  machine.restore();
  EXPECT_EQ(machine.state_digest(), boot_digest)
      << "restore must reproduce the snapshot bit-for-bit";

  machine.run(2'000'000);
  EXPECT_EQ(machine.state_digest(), first_run)
      << "the same run from the same snapshot must digest identically";
}

TEST(check_determinism, StateDigestSensitiveToSingleBit) {
  const disk::DiskImage root_disk = machine::make_root_disk();
  machine::Machine machine(kernel::built_kernel(),
                           workloads::built_workload("pipe"), root_disk);
  ASSERT_TRUE(machine.boot());
  const std::uint64_t before = machine.state_digest();
  machine.disk_image().bytes()[12345] ^= 0x01;
  EXPECT_NE(machine.state_digest(), before);
  machine.disk_image().bytes()[12345] ^= 0x01;
  EXPECT_EQ(machine.state_digest(), before);
}

}  // namespace
}  // namespace kfi::check
