// Kernel build pipeline tests: the MiniC kernel compiles, links, lays
// out within its regions, and exports the paper's hot functions.
#include "kernel/build.h"

#include <gtest/gtest.h>

#include "vm/layout.h"

namespace kfi::kernel {
namespace {

TEST(KernelBuild, BuildsWithoutErrors) {
  const BuildResult result = build_kernel();
  ASSERT_TRUE(result.ok) << (result.errors.empty() ? "?"
                                                   : result.errors[0]);
  EXPECT_FALSE(result.image.segments.empty());
  EXPECT_GT(result.image.functions.size(), 60u);
}

TEST(KernelBuild, PaperHotFunctionsExist) {
  const KernelImage& image = built_kernel();
  // The functions the paper names explicitly.
  for (const char* name :
       {"do_page_fault", "schedule", "zap_page_range",
        "do_generic_file_read", "pipe_read", "open_namei",
        "link_path_walk", "sys_read", "get_hash_table", "do_wp_page",
        "generic_commit_write", "reschedule_idle", "__wake_up"}) {
    const KernelFunction* fn = image.function(name);
    ASSERT_NE(fn, nullptr) << name;
    EXPECT_GT(fn->end, fn->start) << name;
  }
}

TEST(KernelBuild, FunctionsLandInTheirSubsystemRegions) {
  const KernelImage& image = built_kernel();
  const struct {
    const char* name;
    Subsystem subsystem;
  } expectations[] = {
      {"do_page_fault", Subsystem::Arch},
      {"system_call", Subsystem::Arch},
      {"switch_to", Subsystem::Arch},
      {"schedule", Subsystem::Kernel},
      {"do_fork", Subsystem::Kernel},
      {"do_generic_file_read", Subsystem::Mm},
      {"zap_page_range", Subsystem::Mm},
      {"do_wp_page", Subsystem::Mm},
      {"pipe_read", Subsystem::Fs},
      {"open_namei", Subsystem::Fs},
      {"get_hash_table", Subsystem::Fs},
      {"console_write", Subsystem::Drivers},
      {"ll_rw_block", Subsystem::Drivers},
      {"memcpy", Subsystem::Lib},
      {"sys_ipc", Subsystem::Ipc},
  };
  for (const auto& expect : expectations) {
    const KernelFunction* fn = image.function(expect.name);
    ASSERT_NE(fn, nullptr) << expect.name;
    EXPECT_EQ(fn->subsystem, expect.subsystem) << expect.name;
    EXPECT_EQ(subsystem_of_addr(fn->start), expect.subsystem) << expect.name;
  }
}

TEST(KernelBuild, SymbolsIncludeEntryAndVectors) {
  const KernelImage& image = built_kernel();
  for (const char* symbol :
       {"start_kernel", "system_call", "timer_interrupt",
        "page_fault_entry", "invalid_op_entry", "general_protection_entry",
        "divide_error_entry", "ret_from_fork", "sys_call_table",
        "current", "need_resched"}) {
    EXPECT_NE(image.symbol(symbol), 0u) << symbol;
  }
}

TEST(KernelBuild, FunctionAtResolvesAddresses) {
  const KernelImage& image = built_kernel();
  const KernelFunction* schedule = image.function("schedule");
  ASSERT_NE(schedule, nullptr);
  EXPECT_EQ(image.function_at(schedule->start), schedule);
  EXPECT_EQ(image.function_at(schedule->end - 1), schedule);
}

TEST(KernelBuild, SubsystemOfAddrOutsideTextIsUnknown) {
  EXPECT_EQ(subsystem_of_addr(0x1000), Subsystem::Unknown);
  EXPECT_EQ(subsystem_of_addr(0xC0200000), Subsystem::Unknown);
}

TEST(KernelBuild, SourceLinesCounted) {
  const KernelImage& image = built_kernel();
  EXPECT_GT(image.source_lines.at(Subsystem::Fs), 100u);
  EXPECT_GT(image.source_lines.at(Subsystem::Mm), 100u);
}

TEST(KernelBuild, SubsystemNames) {
  EXPECT_EQ(subsystem_name(Subsystem::Arch), "arch");
  EXPECT_EQ(subsystem_name(Subsystem::Mm), "mm");
  EXPECT_EQ(subsystem_name(Subsystem::Unknown), "unknown");
}

}  // namespace
}  // namespace kfi::kernel
