// Content-addressed shard store: record round-trip in the campaign
// cache byte layout, artifact self-verification by content hash, the
// k-way spec-order merge, and the streaming digest fold the sharded
// campaign service rests on.
#include "analysis/store.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "support/fsio.h"
#include "support/serial.h"

namespace kfi::analysis {
namespace {

std::string fresh_dir(const std::string& name) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / name).string();
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

// A result with every serialized field off its default, so a field
// dropped or reordered by the codec shows up as a mismatch.
inject::InjectionResult sample_result(std::uint64_t salt) {
  inject::InjectionResult r;
  r.spec.campaign = inject::Campaign::RandomBranch;
  r.spec.function = "sys_write_" + std::to_string(salt);
  r.spec.subsystem = kernel::Subsystem::Fs;
  r.spec.instr_addr = 0x1000 + static_cast<std::uint32_t>(salt);
  r.spec.instr_len = 3;
  r.spec.byte_index = 1;
  r.spec.bit_index = static_cast<std::uint8_t>(salt % 8);
  r.spec.workload = "pipe";
  r.outcome = inject::Outcome::DumpedCrash;
  r.activation_cycle = 77 + salt;
  r.cause = inject::CrashCause::PagingRequest;
  r.crash_eip = 0x2000;
  r.crash_addr = 0xdead0000 + static_cast<std::uint32_t>(salt);
  r.crash_subsystem = kernel::Subsystem::Mm;
  r.propagated = true;
  r.latency_cycles = 12345 + salt;
  r.severity = inject::Severity::Severe;
  r.fs_damaged = true;
  r.bootable = false;
  r.repair_verified = true;
  r.disasm_before = "mov eax, ebx";
  r.disasm_after = "mov eax, ebp";
  return r;
}

void expect_equal(const inject::InjectionResult& a,
                  const inject::InjectionResult& b) {
  EXPECT_EQ(a.spec.campaign, b.spec.campaign);
  EXPECT_EQ(a.spec.function, b.spec.function);
  EXPECT_EQ(a.spec.subsystem, b.spec.subsystem);
  EXPECT_EQ(a.spec.instr_addr, b.spec.instr_addr);
  EXPECT_EQ(a.spec.instr_len, b.spec.instr_len);
  EXPECT_EQ(a.spec.byte_index, b.spec.byte_index);
  EXPECT_EQ(a.spec.bit_index, b.spec.bit_index);
  EXPECT_EQ(a.spec.workload, b.spec.workload);
  EXPECT_EQ(a.outcome, b.outcome);
  EXPECT_EQ(a.activation_cycle, b.activation_cycle);
  EXPECT_EQ(a.cause, b.cause);
  EXPECT_EQ(a.crash_eip, b.crash_eip);
  EXPECT_EQ(a.crash_addr, b.crash_addr);
  EXPECT_EQ(a.crash_subsystem, b.crash_subsystem);
  EXPECT_EQ(a.propagated, b.propagated);
  EXPECT_EQ(a.latency_cycles, b.latency_cycles);
  EXPECT_EQ(a.severity, b.severity);
  EXPECT_EQ(a.fs_damaged, b.fs_damaged);
  EXPECT_EQ(a.bootable, b.bootable);
  EXPECT_EQ(a.repair_verified, b.repair_verified);
  EXPECT_EQ(a.disasm_before, b.disasm_before);
  EXPECT_EQ(a.disasm_after, b.disasm_after);
}

TEST(Store, ResultRoundTripPreservesEveryField) {
  const inject::InjectionResult original = sample_result(5);
  ByteWriter writer;
  write_result(writer, original);
  ByteReader reader(writer.buffer().data(), writer.size());
  inject::InjectionResult back;
  ASSERT_TRUE(read_result(reader, back));
  EXPECT_EQ(reader.remaining(), 0u);
  expect_equal(original, back);
}

TEST(Store, ResultDigestMatchesStreamingFoldOverSameOrder) {
  std::vector<inject::CampaignRun> runs(2);
  runs[0].results = {sample_result(0), sample_result(1), sample_result(2)};
  runs[1].results = {sample_result(3), sample_result(4)};

  ResultDigest rolling;
  for (const auto& run : runs)
    for (const auto& r : run.results) rolling.add(r);
  EXPECT_EQ(rolling.value(), results_digest(runs));

  StreamingFold fold({3, 2}, /*materialize=*/true);
  std::uint64_t index = 0;
  for (const auto& run : runs)
    for (const auto& r : run.results)
      ASSERT_TRUE(fold.add(ShardRecord{index++, r}));
  EXPECT_TRUE(fold.complete());
  EXPECT_EQ(fold.digest(), results_digest(runs));
  ASSERT_EQ(fold.slots().size(), 2u);
  EXPECT_EQ(fold.slots()[0].size(), 3u);
  EXPECT_EQ(fold.slots()[1].size(), 2u);
  expect_equal(fold.slots()[1][0], runs[1].results[0]);
}

TEST(Store, WriteShardIsContentAddressedAndVerifies) {
  const std::string dir = fresh_dir("kfi_store_test_write");
  ShardStore store(dir);
  // Records handed over unsorted; the file must come back in spec order.
  std::vector<ShardRecord> records = {{9, sample_result(9)},
                                      {4, sample_result(4)},
                                      {7, sample_result(7)}};
  const std::string path = store.write_shard(3, 0xabcd, records);
  ASSERT_FALSE(path.empty());
  EXPECT_TRUE(ShardStore::verify_shard(path));
  const auto found = store.find_shard(3);
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(*found, path);
  EXPECT_FALSE(store.find_shard(2).has_value());

  auto cursor = ShardCursor::open(path, 3, 0xabcd);
  ASSERT_TRUE(cursor.has_value());
  EXPECT_EQ(cursor->records(), 3u);
  ShardRecord record;
  std::vector<std::uint64_t> order;
  while (cursor->next(record)) order.push_back(record.spec_index);
  EXPECT_TRUE(cursor->ok());
  EXPECT_EQ(order, (std::vector<std::uint64_t>{4, 7, 9}));

  // Wrong expectations are rejected at open.
  EXPECT_FALSE(ShardCursor::open(path, 2, 0xabcd).has_value());
  EXPECT_FALSE(ShardCursor::open(path, 3, 0xbeef).has_value());
}

TEST(Store, CorruptedArtifactFailsVerificationAndIsDiscardable) {
  const std::string dir = fresh_dir("kfi_store_test_corrupt");
  ShardStore store(dir);
  const std::string path =
      store.write_shard(0, 1, {{0, sample_result(0)}, {1, sample_result(1)}});
  ASSERT_FALSE(path.empty());

  // Flip one byte in the middle of the file: the name's hash no longer
  // matches the content, exactly as if a worker died mid-write or the
  // disk corrupted the artifact.
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.good());
    f.seekg(0, std::ios::end);
    const auto size = static_cast<long>(f.tellg());
    f.seekp(size / 2);
    char byte = 0;
    f.seekg(size / 2);
    f.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x40);
    f.seekp(size / 2);
    f.write(&byte, 1);
  }
  EXPECT_FALSE(ShardStore::verify_shard(path));

  store.discard_shard(0);
  EXPECT_FALSE(store.find_shard(0).has_value());
}

TEST(Store, TruncatedArtifactFailsVerification) {
  const std::string dir = fresh_dir("kfi_store_test_trunc");
  ShardStore store(dir);
  const std::string path = store.write_shard(0, 1, {{0, sample_result(0)}});
  ASSERT_FALSE(path.empty());
  const auto size = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, size - 8);
  EXPECT_FALSE(ShardStore::verify_shard(path));
}

TEST(Store, MergeShardsYieldsAscendingSpecOrderAcrossShards) {
  const std::string dir = fresh_dir("kfi_store_test_merge");
  ShardStore store(dir);
  // Interleaved spec indices across three shards: 0,3,6 / 1,4 / 2,5.
  const std::string p0 =
      store.write_shard(0, 7, {{0, sample_result(0)},
                               {3, sample_result(3)},
                               {6, sample_result(6)}});
  const std::string p1 =
      store.write_shard(1, 7, {{1, sample_result(1)}, {4, sample_result(4)}});
  const std::string p2 =
      store.write_shard(2, 7, {{2, sample_result(2)}, {5, sample_result(5)}});
  ASSERT_FALSE(p0.empty() || p1.empty() || p2.empty());

  std::vector<ShardCursor> cursors;
  for (const auto& [path, index] :
       {std::pair{p0, 0u}, std::pair{p1, 1u}, std::pair{p2, 2u}}) {
    auto cursor = ShardCursor::open(path, index, 7);
    ASSERT_TRUE(cursor.has_value());
    cursors.push_back(std::move(*cursor));
  }
  std::vector<std::uint64_t> order;
  EXPECT_TRUE(merge_shards(cursors, [&](const ShardRecord& record) {
    order.push_back(record.spec_index);
    return true;
  }));
  EXPECT_EQ(order, (std::vector<std::uint64_t>{0, 1, 2, 3, 4, 5, 6}));
}

TEST(Store, MergeRejectsDuplicateSpecIndices) {
  const std::string dir = fresh_dir("kfi_store_test_dup");
  ShardStore store(dir);
  const std::string p0 =
      store.write_shard(0, 7, {{0, sample_result(0)}, {2, sample_result(2)}});
  const std::string p1 =
      store.write_shard(1, 7, {{1, sample_result(1)}, {2, sample_result(9)}});
  std::vector<ShardCursor> cursors;
  auto c0 = ShardCursor::open(p0, 0, 7);
  auto c1 = ShardCursor::open(p1, 1, 7);
  ASSERT_TRUE(c0.has_value() && c1.has_value());
  cursors.push_back(std::move(*c0));
  cursors.push_back(std::move(*c1));
  EXPECT_FALSE(merge_shards(cursors, [](const ShardRecord&) { return true; }));
}

TEST(Store, StreamingFoldRejectsGapsDuplicatesAndOverruns) {
  {
    StreamingFold fold({2}, false);
    EXPECT_TRUE(fold.add({0, sample_result(0)}));
    EXPECT_FALSE(fold.add({0, sample_result(0)}));  // duplicate
  }
  {
    StreamingFold fold({3}, false);
    EXPECT_TRUE(fold.add({0, sample_result(0)}));
    EXPECT_FALSE(fold.add({2, sample_result(2)}));  // gap at 1
  }
  {
    StreamingFold fold({1}, false);
    EXPECT_TRUE(fold.add({0, sample_result(0)}));
    EXPECT_TRUE(fold.complete());
    EXPECT_FALSE(fold.add({1, sample_result(1)}));  // overrun
  }
}

}  // namespace
}  // namespace kfi::analysis
