// Analysis aggregation tests over synthetic injection results.
#include "analysis/aggregate.h"

#include <gtest/gtest.h>

#include "analysis/render.h"

namespace kfi::analysis {
namespace {

using inject::Campaign;
using inject::CampaignRun;
using inject::CrashCause;
using inject::InjectionResult;
using inject::Outcome;
using inject::Severity;
using kernel::Subsystem;

InjectionResult make_result(Subsystem subsystem, Outcome outcome,
                            CrashCause cause = CrashCause::Other,
                            Subsystem crash_in = Subsystem::Unknown,
                            std::uint64_t latency = 0,
                            const char* function = "f") {
  InjectionResult r;
  r.spec.subsystem = subsystem;
  r.spec.function = function;
  r.outcome = outcome;
  r.cause = cause;
  r.crash_subsystem =
      crash_in == Subsystem::Unknown ? subsystem : crash_in;
  r.propagated = r.crash_subsystem != subsystem;
  r.latency_cycles = latency;
  if (outcome == Outcome::DumpedCrash || outcome == Outcome::HangUnknown) {
    r.severity = Severity::Normal;
  }
  return r;
}

CampaignRun sample_run() {
  CampaignRun run;
  run.campaign = Campaign::RandomNonBranch;
  // fs: 2 injected, 1 not activated, 1 crash (null ptr, stays in fs).
  run.results.push_back(make_result(Subsystem::Fs, Outcome::NotActivated));
  run.results.push_back(make_result(Subsystem::Fs, Outcome::DumpedCrash,
                                    CrashCause::NullPointer, Subsystem::Fs,
                                    5, "sys_read"));
  // kernel: crash that propagates to mm with long latency.
  run.results.push_back(make_result(Subsystem::Kernel, Outcome::DumpedCrash,
                                    CrashCause::PagingRequest, Subsystem::Mm,
                                    200'000, "schedule"));
  // mm: not manifested + FSV + hang.
  run.results.push_back(make_result(Subsystem::Mm, Outcome::NotManifested));
  run.results.push_back(
      make_result(Subsystem::Mm, Outcome::FailSilenceViolation));
  run.results.push_back(make_result(Subsystem::Mm, Outcome::HangUnknown));
  // arch: invalid opcode crash within arch.
  run.results.push_back(make_result(Subsystem::Arch, Outcome::DumpedCrash,
                                    CrashCause::InvalidOpcode,
                                    Subsystem::Arch, 1, "do_page_fault"));
  return run;
}

TEST(OutcomeTableTest, CountsPerSubsystem) {
  const OutcomeTable table = make_outcome_table(sample_run());
  ASSERT_EQ(table.rows.size(), 4u);

  const OutcomeRow& fs = table.rows[1];  // arch, fs, kernel, mm order
  EXPECT_EQ(fs.subsystem, Subsystem::Fs);
  EXPECT_EQ(fs.injected, 2u);
  EXPECT_EQ(fs.activated, 1u);
  EXPECT_EQ(fs.crash_hang, 1u);

  const OutcomeRow& mm = table.rows[3];
  EXPECT_EQ(mm.injected, 3u);
  EXPECT_EQ(mm.activated, 3u);
  EXPECT_EQ(mm.not_manifested, 1u);
  EXPECT_EQ(mm.fail_silence, 1u);
  EXPECT_EQ(mm.crash_hang, 1u);

  EXPECT_EQ(table.total.injected, 7u);
  EXPECT_EQ(table.total.activated, 6u);
  EXPECT_EQ(table.dumped_crash, 3u);
  EXPECT_EQ(table.hang_unknown, 1u);
}

TEST(OutcomeTableTest, DistinctFunctionCount) {
  CampaignRun run;
  run.campaign = Campaign::RandomBranch;
  run.results.push_back(make_result(Subsystem::Fs, Outcome::NotActivated,
                                    CrashCause::Other, Subsystem::Unknown, 0,
                                    "a"));
  run.results.push_back(make_result(Subsystem::Fs, Outcome::NotActivated,
                                    CrashCause::Other, Subsystem::Unknown, 0,
                                    "a"));
  run.results.push_back(make_result(Subsystem::Fs, Outcome::NotActivated,
                                    CrashCause::Other, Subsystem::Unknown, 0,
                                    "b"));
  const OutcomeTable table = make_outcome_table(run);
  EXPECT_EQ(table.rows[1].functions, 2u);
}

TEST(CrashCauses, CountsAndTop4) {
  const CrashCauseDistribution dist = make_crash_causes(sample_run());
  EXPECT_EQ(dist.total, 3u);
  EXPECT_EQ(dist.counts.at(CrashCause::NullPointer), 1u);
  EXPECT_EQ(dist.counts.at(CrashCause::PagingRequest), 1u);
  EXPECT_EQ(dist.counts.at(CrashCause::InvalidOpcode), 1u);
  EXPECT_DOUBLE_EQ(dist.top4_share(), 1.0);
}

TEST(CrashCauses, Top4ExcludesOtherCauses) {
  CampaignRun run;
  run.campaign = Campaign::RandomNonBranch;
  run.results.push_back(make_result(Subsystem::Fs, Outcome::DumpedCrash,
                                    CrashCause::DivideError));
  run.results.push_back(make_result(Subsystem::Fs, Outcome::DumpedCrash,
                                    CrashCause::NullPointer));
  const CrashCauseDistribution dist = make_crash_causes(run);
  EXPECT_DOUBLE_EQ(dist.top4_share(), 0.5);
}

TEST(Latency, BucketsByDecadeAndSubsystem) {
  const LatencyDistribution dist = make_latency(sample_run());
  EXPECT_EQ(dist.overall.total(), 3u);
  EXPECT_EQ(dist.overall.count(0), 2u);   // latencies 5 and 1
  EXPECT_EQ(dist.overall.count(5), 1u);   // 200k > 100k
  EXPECT_EQ(dist.by_subsystem.at(Subsystem::Kernel).count(5), 1u);
  EXPECT_EQ(dist.by_subsystem.at(Subsystem::Arch).count(0), 1u);
}

TEST(Propagation, EdgesAndSelfShare) {
  CampaignRun run;
  run.campaign = Campaign::RandomNonBranch;
  for (int i = 0; i < 9; ++i) {
    run.results.push_back(make_result(Subsystem::Fs, Outcome::DumpedCrash,
                                      CrashCause::NullPointer,
                                      Subsystem::Fs));
  }
  run.results.push_back(make_result(Subsystem::Fs, Outcome::DumpedCrash,
                                    CrashCause::PagingRequest,
                                    Subsystem::Kernel));
  const PropagationGraph graph = make_propagation(run, Subsystem::Fs);
  EXPECT_EQ(graph.total_crashes, 10u);
  EXPECT_DOUBLE_EQ(graph.self_share(), 0.9);
  ASSERT_EQ(graph.edges.size(), 2u);
}

TEST(Propagation, IgnoresOtherSubsystems) {
  const PropagationGraph graph =
      make_propagation(sample_run(), Subsystem::Fs);
  EXPECT_EQ(graph.total_crashes, 1u);
  EXPECT_DOUBLE_EQ(graph.self_share(), 1.0);
}

TEST(SeverityAgg, CountsAndDowntime) {
  CampaignRun run;
  run.campaign = Campaign::IncorrectBranch;
  InjectionResult normal = make_result(Subsystem::Fs, Outcome::DumpedCrash);
  InjectionResult severe = make_result(Subsystem::Fs, Outcome::DumpedCrash);
  severe.severity = Severity::Severe;
  InjectionResult worst = make_result(Subsystem::Mm, Outcome::DumpedCrash);
  worst.severity = Severity::MostSevere;
  run.results = {};
  run.results.push_back(normal);
  run.results.push_back(severe);
  run.results.push_back(worst);

  const SeveritySummary summary = make_severity(run);
  EXPECT_EQ(summary.normal, 1u);
  EXPECT_EQ(summary.severe, 1u);
  EXPECT_EQ(summary.most_severe, 1u);
  EXPECT_EQ(summary.most_severe_indices.size(), 1u);
  EXPECT_EQ(summary.total_downtime_seconds,
            inject::severity_downtime_seconds(Severity::Normal) +
                inject::severity_downtime_seconds(Severity::Severe) +
                inject::severity_downtime_seconds(Severity::MostSevere));
}

TEST(Renderers, ProduceNonEmptyPaperStyleText) {
  const CampaignRun run = sample_run();
  const OutcomeTable table = make_outcome_table(run);
  const std::string fig4 = render_outcome_table(table);
  EXPECT_NE(fig4.find("Campaign A"), std::string::npos);
  EXPECT_NE(fig4.find("Crash/Hang"), std::string::npos);

  const std::string fig6 = render_crash_causes(make_crash_causes(run));
  EXPECT_NE(fig6.find("NULL pointer"), std::string::npos);

  const std::string fig7 = render_latency(make_latency(run));
  EXPECT_NE(fig7.find("<=10"), std::string::npos);

  const std::string fig8 =
      render_propagation(make_propagation(run, Subsystem::Fs));
  EXPECT_NE(fig8.find("fs ->"), std::string::npos);

  const std::string table4 = render_table4();
  EXPECT_NE(table4.find("Valid but Incorrect Branch"), std::string::npos);

  const std::string sev = render_severity(run, make_severity(run));
  EXPECT_NE(sev.find("most severe"), std::string::npos);

  const std::string fig1 = render_fig1(kernel::built_kernel());
  EXPECT_NE(fig1.find("fs"), std::string::npos);
}

TEST(SeverityDowntime, ModelMatchesPaper) {
  EXPECT_EQ(inject::severity_downtime_seconds(Severity::Normal), 240u);
  EXPECT_GT(inject::severity_downtime_seconds(Severity::Severe), 300u);
  EXPECT_GE(inject::severity_downtime_seconds(Severity::MostSevere), 3000u);
}

}  // namespace
}  // namespace kfi::analysis
