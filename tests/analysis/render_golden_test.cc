// Golden-file tests for the text renderers behind the paper's tables:
// Figure 4 (outcome table), Figure 6 (crash causes), Figure 7 (crash
// latency).  The input is a synthetic, fully deterministic campaign
// run, so the rendered text is stable; the goldens live in
// tests/analysis/golden/ and are refreshed with
//
//   UPDATE_GOLDENS=1 ctest -R render_golden
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>

#include "analysis/aggregate.h"
#include "analysis/render.h"

#ifndef KFI_SOURCE_DIR
#define KFI_SOURCE_DIR "."
#endif

namespace kfi::analysis {
namespace {

using inject::Campaign;
using inject::CampaignRun;
using inject::CrashCause;
using inject::InjectionResult;
using inject::Outcome;
using kernel::Subsystem;

// A hand-built run exercising every rendered code path: all four table
// subsystems, every outcome, every dominant cause, latencies across
// the histogram decades, and a non-table subsystem folded into totals.
CampaignRun golden_run() {
  CampaignRun run;
  run.campaign = Campaign::RandomNonBranch;
  run.functions_targeted = 6;

  struct Row {
    const char* function;
    Subsystem subsystem;
    Outcome outcome;
    CrashCause cause;
    Subsystem crash_in;
    std::uint64_t latency;
    int count;
  };
  const Row rows[] = {
      {"pipe_read", Subsystem::Fs, Outcome::NotActivated, CrashCause::Other,
       Subsystem::Unknown, 0, 4},
      {"pipe_read", Subsystem::Fs, Outcome::NotManifested, CrashCause::Other,
       Subsystem::Unknown, 0, 6},
      {"pipe_read", Subsystem::Fs, Outcome::FailSilenceViolation,
       CrashCause::Other, Subsystem::Unknown, 0, 3},
      {"pipe_read", Subsystem::Fs, Outcome::DumpedCrash,
       CrashCause::NullPointer, Subsystem::Fs, 2, 5},
      {"iget", Subsystem::Fs, Outcome::DumpedCrash, CrashCause::PagingRequest,
       Subsystem::Fs, 40, 3},
      {"iget", Subsystem::Fs, Outcome::DumpedCrash, CrashCause::InvalidOpcode,
       Subsystem::Kernel, 700, 2},
      {"schedule", Subsystem::Kernel, Outcome::NotManifested,
       CrashCause::Other, Subsystem::Unknown, 0, 4},
      {"schedule", Subsystem::Kernel, Outcome::DumpedCrash,
       CrashCause::GpFault, Subsystem::Kernel, 9, 2},
      {"schedule", Subsystem::Kernel, Outcome::HangUnknown, CrashCause::Other,
       Subsystem::Unknown, 0, 2},
      {"free_pages", Subsystem::Mm, Outcome::DumpedCrash,
       CrashCause::InvalidOpcode, Subsystem::Mm, 1, 4},
      {"free_pages", Subsystem::Mm, Outcome::DumpedCrash,
       CrashCause::DivideError, Subsystem::Mm, 120000, 1},
      {"do_page_fault", Subsystem::Arch, Outcome::DumpedCrash,
       CrashCause::PagingRequest, Subsystem::Arch, 15000, 2},
      {"strncmp", Subsystem::Lib, Outcome::FailSilenceViolation,
       CrashCause::Other, Subsystem::Unknown, 0, 2},
  };
  for (const Row& row : rows) {
    for (int i = 0; i < row.count; ++i) {
      InjectionResult r;
      r.spec.campaign = run.campaign;
      r.spec.function = row.function;
      r.spec.subsystem = row.subsystem;
      r.spec.workload = "pipe";
      r.outcome = row.outcome;
      if (row.outcome == Outcome::DumpedCrash) {
        r.cause = row.cause;
        r.crash_subsystem = row.crash_in;
        r.propagated = row.crash_in != row.subsystem;
        r.latency_cycles = row.latency;
        r.severity = inject::Severity::Normal;
      }
      run.results.push_back(r);
    }
  }
  return run;
}

std::string golden_dir() {
  return std::string(KFI_SOURCE_DIR) + "/tests/analysis/golden";
}

std::string read_file(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(file)),
                     std::istreambuf_iterator<char>());
}

// Compares `rendered` with the golden file, or rewrites the golden when
// UPDATE_GOLDENS=1 is set in the environment.
void expect_matches_golden(const std::string& rendered, const char* name) {
  const std::string path = golden_dir() + "/" + name;
  const char* update = std::getenv("UPDATE_GOLDENS");
  if (update != nullptr && std::string(update) == "1") {
    std::filesystem::create_directories(golden_dir());
    std::ofstream(path, std::ios::binary | std::ios::trunc) << rendered;
    SUCCEED() << "rewrote " << path;
    return;
  }
  ASSERT_TRUE(std::filesystem::exists(path))
      << path << " missing — run with UPDATE_GOLDENS=1 to create it";
  EXPECT_EQ(rendered, read_file(path))
      << "rendered text drifted from " << path
      << " — if the change is intentional, refresh with UPDATE_GOLDENS=1";
}

TEST(render_golden, Fig4OutcomeTable) {
  const CampaignRun run = golden_run();
  expect_matches_golden(render_outcome_table(make_outcome_table(run)),
                        "fig4_outcome_table.txt");
}

TEST(render_golden, Fig6CrashCauses) {
  const CampaignRun run = golden_run();
  expect_matches_golden(render_crash_causes(make_crash_causes(run)),
                        "fig6_crash_causes.txt");
}

TEST(render_golden, Fig7CrashLatency) {
  const CampaignRun run = golden_run();
  expect_matches_golden(render_latency(make_latency(run)),
                        "fig7_crash_latency.txt");
}

}  // namespace
}  // namespace kfi::analysis
