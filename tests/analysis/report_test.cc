// Markdown report generator tests (synthetic inputs).
#include "analysis/report.h"

#include <gtest/gtest.h>

namespace kfi::analysis {
namespace {

using inject::Campaign;
using inject::CampaignRun;
using inject::CrashCause;
using inject::InjectionResult;
using inject::Outcome;
using inject::Severity;

CampaignRun small_run(Campaign campaign) {
  CampaignRun run;
  run.campaign = campaign;
  run.functions_targeted = 2;

  InjectionResult crash;
  crash.spec.campaign = campaign;
  crash.spec.function = "sys_read";
  crash.spec.subsystem = kernel::Subsystem::Fs;
  crash.outcome = Outcome::DumpedCrash;
  crash.cause = CrashCause::NullPointer;
  crash.crash_subsystem = kernel::Subsystem::Fs;
  crash.latency_cycles = 3;
  crash.severity = Severity::Normal;
  run.results.push_back(crash);

  InjectionResult nm;
  nm.spec.function = "schedule";
  nm.spec.subsystem = kernel::Subsystem::Kernel;
  nm.outcome = Outcome::NotManifested;
  run.results.push_back(nm);

  InjectionResult dead;
  dead.spec.function = "schedule";
  dead.spec.subsystem = kernel::Subsystem::Kernel;
  dead.outcome = Outcome::NotActivated;
  run.results.push_back(dead);
  return run;
}

TEST(Report, ContainsTitleAndCampaignSections) {
  const CampaignRun a = small_run(Campaign::RandomNonBranch);
  const CampaignRun c = small_run(Campaign::IncorrectBranch);
  ReportInputs inputs;
  inputs.title = "My study";
  inputs.campaigns = {&a, &c};
  const std::string md = render_markdown_report(inputs);
  EXPECT_NE(md.find("# My study"), std::string::npos);
  EXPECT_NE(md.find("### Campaign A"), std::string::npos);
  EXPECT_NE(md.find("### Campaign C"), std::string::npos);
  EXPECT_NE(md.find("| subsystem |"), std::string::npos);
  EXPECT_NE(md.find("**total**"), std::string::npos);
  EXPECT_NE(md.find("Crash causes"), std::string::npos);
  EXPECT_NE(md.find("null-ptr"), std::string::npos);
  EXPECT_NE(md.find("Severity:"), std::string::npos);
}

TEST(Report, NullCampaignsIgnored) {
  ReportInputs inputs;
  inputs.campaigns = {nullptr};
  const std::string md = render_markdown_report(inputs);
  EXPECT_NE(md.find("## Campaign outcomes"), std::string::npos);
  EXPECT_EQ(md.find("### Campaign"), std::string::npos);
}

TEST(Report, ProfileSectionWhenGiven) {
  profile::ProfileResult prof;
  profile::FunctionSamples fs;
  fs.function = "pipe_read";
  fs.subsystem = kernel::Subsystem::Fs;
  fs.samples = 1234;
  prof.functions.push_back(fs);
  prof.total_kernel_samples = 1234;

  ReportInputs inputs;
  inputs.profile = &prof;
  const std::string md = render_markdown_report(inputs);
  EXPECT_NE(md.find("## Kernel profile"), std::string::npos);
  EXPECT_NE(md.find("`pipe_read`"), std::string::npos);
  EXPECT_NE(md.find("1,234"), std::string::npos);
}

TEST(Report, CrashFreeRunOmitsCrashSections) {
  CampaignRun run;
  run.campaign = Campaign::RandomBranch;
  InjectionResult nm;
  nm.spec.function = "f";
  nm.spec.subsystem = kernel::Subsystem::Mm;
  nm.outcome = Outcome::NotManifested;
  run.results.push_back(nm);

  ReportInputs inputs;
  inputs.campaigns = {&run};
  const std::string md = render_markdown_report(inputs);
  EXPECT_EQ(md.find("Crash causes"), std::string::npos);
  EXPECT_NE(md.find("Severity: 0 normal"), std::string::npos);
}

}  // namespace
}  // namespace kfi::analysis
