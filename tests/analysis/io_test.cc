// Campaign persistence round-trip tests.
#include "analysis/io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

namespace kfi::analysis {
namespace {

using inject::Campaign;
using inject::CampaignRun;
using inject::CrashCause;
using inject::InjectionResult;
using inject::Outcome;
using inject::Severity;

CampaignRun sample_run() {
  CampaignRun run;
  run.campaign = Campaign::IncorrectBranch;
  run.functions_targeted = 3;
  InjectionResult r;
  r.spec.campaign = Campaign::IncorrectBranch;
  r.spec.function = "pipe_read";
  r.spec.subsystem = kernel::Subsystem::Fs;
  r.spec.instr_addr = 0xC0134567;
  r.spec.instr_len = 6;
  r.spec.byte_index = 1;
  r.spec.bit_index = 0;
  r.spec.workload = "pipe";
  r.outcome = Outcome::DumpedCrash;
  r.activation_cycle = 123456;
  r.cause = CrashCause::InvalidOpcode;
  r.crash_eip = 0xC0134570;
  r.crash_addr = 0x1B;
  r.crash_subsystem = kernel::Subsystem::Fs;
  r.propagated = false;
  r.latency_cycles = 7;
  r.severity = Severity::Severe;
  r.fs_damaged = true;
  r.bootable = false;
  r.repair_verified = true;
  r.disasm_before = "je c0134580";
  r.disasm_after = "jne c0134580";
  run.results.push_back(r);

  InjectionResult nm;
  nm.spec.function = "schedule";
  nm.spec.subsystem = kernel::Subsystem::Kernel;
  nm.spec.workload = "syscall";
  nm.outcome = Outcome::NotManifested;
  run.results.push_back(nm);
  return run;
}

std::string temp_path(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

TEST(CampaignIo, SaveLoadRoundTrip) {
  const std::string path = temp_path("kfi_io_roundtrip.kfi");
  const CampaignRun original = sample_run();
  ASSERT_TRUE(save_campaign(original, path));

  const auto loaded = load_campaign(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->campaign, original.campaign);
  EXPECT_EQ(loaded->functions_targeted, original.functions_targeted);
  ASSERT_EQ(loaded->results.size(), original.results.size());

  const InjectionResult& a = original.results[0];
  const InjectionResult& b = loaded->results[0];
  EXPECT_EQ(b.spec.function, a.spec.function);
  EXPECT_EQ(b.spec.subsystem, a.spec.subsystem);
  EXPECT_EQ(b.spec.instr_addr, a.spec.instr_addr);
  EXPECT_EQ(b.spec.instr_len, a.spec.instr_len);
  EXPECT_EQ(b.spec.byte_index, a.spec.byte_index);
  EXPECT_EQ(b.spec.bit_index, a.spec.bit_index);
  EXPECT_EQ(b.spec.workload, a.spec.workload);
  EXPECT_EQ(b.outcome, a.outcome);
  EXPECT_EQ(b.activation_cycle, a.activation_cycle);
  EXPECT_EQ(b.cause, a.cause);
  EXPECT_EQ(b.crash_eip, a.crash_eip);
  EXPECT_EQ(b.crash_addr, a.crash_addr);
  EXPECT_EQ(b.crash_subsystem, a.crash_subsystem);
  EXPECT_EQ(b.propagated, a.propagated);
  EXPECT_EQ(b.latency_cycles, a.latency_cycles);
  EXPECT_EQ(b.severity, a.severity);
  EXPECT_EQ(b.fs_damaged, a.fs_damaged);
  EXPECT_EQ(b.bootable, a.bootable);
  EXPECT_EQ(b.repair_verified, a.repair_verified);
  EXPECT_EQ(b.disasm_before, a.disasm_before);
  EXPECT_EQ(b.disasm_after, a.disasm_after);
  std::remove(path.c_str());
}

TEST(CampaignIo, MissingFileLoadsNothing) {
  EXPECT_FALSE(load_campaign(temp_path("kfi_io_missing.kfi")).has_value());
}

TEST(CampaignIo, BadMagicRejected) {
  const std::string path = temp_path("kfi_io_badmagic.kfi");
  std::ofstream(path, std::ios::binary) << "not a campaign file at all";
  EXPECT_FALSE(load_campaign(path).has_value());
  std::remove(path.c_str());
}

TEST(CampaignIo, TruncatedFileRejected) {
  const std::string path = temp_path("kfi_io_trunc.kfi");
  ASSERT_TRUE(save_campaign(sample_run(), path));
  // Truncate the file mid-record.
  std::error_code ec;
  const auto size = std::filesystem::file_size(path, ec);
  std::filesystem::resize_file(path, size / 2, ec);
  EXPECT_FALSE(load_campaign(path).has_value());
  std::remove(path.c_str());
}

TEST(CampaignIo, SaveToUnwritablePathFailsCleanly) {
  // Previously save_campaign never checked the stream, so a full or
  // missing target directory produced a silent half-written artifact.
  const std::string path = "/nonexistent-kfi-dir/run.kfi";
  EXPECT_FALSE(save_campaign(sample_run(), path));
  EXPECT_FALSE(std::filesystem::exists(path));
  // A directory is open()-able as a path string but not writable.
  EXPECT_FALSE(save_campaign(
      sample_run(), std::filesystem::temp_directory_path().string()));
}

TEST(CampaignIo, EmptyRunRoundTrips) {
  const std::string path = temp_path("kfi_io_empty.kfi");
  CampaignRun empty;
  empty.campaign = Campaign::RandomBranch;
  ASSERT_TRUE(save_campaign(empty, path));
  const auto loaded = load_campaign(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->campaign, Campaign::RandomBranch);
  EXPECT_TRUE(loaded->results.empty());
  std::remove(path.c_str());
}

TEST(CampaignIo, BenchOptionDefaults) {
  char prog[] = "bench";
  char* argv[] = {prog};
  const BenchOptions options = parse_bench_options(1, argv);
  EXPECT_EQ(options.repeats, 1);
  EXPECT_EQ(options.seed, 2003u);
  EXPECT_TRUE(options.use_cache);
}

TEST(CampaignIo, BenchOptionParsing) {
  char prog[] = "bench";
  char scale[] = "--scale";
  char three[] = "3";
  char seed[] = "--seed";
  char val[] = "42";
  char nocache[] = "--no-cache";
  char quiet[] = "--quiet";
  char* argv[] = {prog, scale, three, seed, val, nocache, quiet};
  const BenchOptions options = parse_bench_options(7, argv);
  EXPECT_EQ(options.repeats, 3);
  EXPECT_EQ(options.seed, 42u);
  EXPECT_FALSE(options.use_cache);
  EXPECT_FALSE(options.verbose);
}

}  // namespace
}  // namespace kfi::analysis
