// The committed kfi-results artifacts must load through analysis/io.cc
// and re-serialize byte-identically — the .kfi format is canonical, so
// load(save(load(x))) has one fixed point and any writer/reader skew
// shows up as a byte diff here.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>

#include "analysis/io.h"

#ifndef KFI_SOURCE_DIR
#define KFI_SOURCE_DIR "."
#endif

namespace kfi::analysis {
namespace {

std::vector<std::string> committed_artifacts() {
  std::vector<std::string> paths;
  const std::string dir = std::string(KFI_SOURCE_DIR) + "/kfi-results";
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    if (entry.path().extension() == ".kfi") {
      paths.push_back(entry.path().string());
    }
  }
  std::sort(paths.begin(), paths.end());
  return paths;
}

std::string read_file(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(file)),
                     std::istreambuf_iterator<char>());
}

TEST(artifact_roundtrip, AllThreeCampaignArtifactsCommitted) {
  const auto paths = committed_artifacts();
  ASSERT_GE(paths.size(), 3u)
      << "expected cached campaign A, B and C artifacts in kfi-results/";
  bool a = false, b = false, c = false;
  for (const std::string& path : paths) {
    const std::string name = std::filesystem::path(path).filename().string();
    a = a || name.rfind("campaign_A_", 0) == 0;
    b = b || name.rfind("campaign_B_", 0) == 0;
    c = c || name.rfind("campaign_C_", 0) == 0;
  }
  EXPECT_TRUE(a) << "campaign_A_*.kfi missing";
  EXPECT_TRUE(b) << "campaign_B_*.kfi missing";
  EXPECT_TRUE(c) << "campaign_C_*.kfi missing";
}

TEST(artifact_roundtrip, CommittedArtifactsReserializeIdentically) {
  for (const std::string& path : committed_artifacts()) {
    SCOPED_TRACE(path);
    const auto run = load_campaign(path);
    ASSERT_TRUE(run.has_value()) << "artifact does not load";
    ASSERT_FALSE(run->results.empty());

    const std::string copy =
        (std::filesystem::temp_directory_path() /
         std::filesystem::path(path).filename())
            .string();
    ASSERT_TRUE(save_campaign(*run, copy));
    EXPECT_EQ(read_file(copy), read_file(path))
        << "re-serialization changed the byte stream";
    std::filesystem::remove(copy);
  }
}

TEST(artifact_roundtrip, ArtifactNamesMatchCurrentKernelFingerprint) {
  // The cache file names embed the kernel fingerprint; if this fails,
  // the kernel image changed and the caches must be regenerated
  // (EXPERIMENTS.md, "Verifying a change").
  const std::string expected = campaign_cache_path(
      std::string(KFI_SOURCE_DIR) + "/kfi-results",
      inject::Campaign::IncorrectBranch, 1, 2003, kernel::built_kernel());
  EXPECT_TRUE(std::filesystem::exists(expected))
      << expected << " not found: kernel image changed without cache"
      << " regeneration";
}

}  // namespace
}  // namespace kfi::analysis
