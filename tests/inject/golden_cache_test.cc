// GoldenCache built-once semantics: golden artifacts are computed
// exactly once per workload no matter how many threads, Injectors, or
// campaigns share the cache, and every borrower sees the same immutable
// bundle.
#include "inject/golden.h"

#include <gtest/gtest.h>

#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "check/expectations.h"
#include "inject/campaign.h"
#include "inject/injector.h"
#include "profile/profile.h"

namespace kfi::inject {
namespace {

std::set<std::string> campaign_workloads(Campaign campaign) {
  const std::vector<InjectionSpec> targets = campaign_targets(
      profile::default_profile(), check::smoke_config(campaign), nullptr);
  std::set<std::string> workloads;
  for (const InjectionSpec& spec : targets) workloads.insert(spec.workload);
  return workloads;
}

TEST(GoldenCache, ConcurrentRequestsBuildEachWorkloadOnce) {
  GoldenCache cache;
  const std::vector<std::string> names = {"pipe", "syscall", "pipe",
                                          "syscall"};
  std::vector<const WorkloadGolden*> seen[2];
  std::vector<std::thread> threads;
  std::mutex mutex;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&, t] {
      for (const std::string& name : names) {
        const WorkloadGolden& artifact = cache.workload(name);
        EXPECT_TRUE(artifact.golden.ok);
        EXPECT_FALSE(artifact.ladder.empty());
        EXPECT_NE(artifact.boot, nullptr);
        const std::lock_guard<std::mutex> lock(mutex);
        seen[name == "pipe" ? 0 : 1].push_back(&artifact);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  // Two distinct workloads requested 32 times from 8 threads: exactly
  // two builds, and every request got the same immutable bundle.
  EXPECT_EQ(cache.golden_builds(), 2u);
  for (const auto& group : seen) {
    for (const WorkloadGolden* artifact : group) {
      EXPECT_EQ(artifact, group.front());
    }
  }
}

TEST(GoldenCache, CampaignsShareOneWarmupAcrossInjectorsAndThreads) {
  const auto& prof = profile::default_profile();
  auto cache = std::make_shared<GoldenCache>();

  CampaignConfig config_a = check::smoke_config(Campaign::RandomNonBranch);
  config_a.threads = 4;
  Injector first(cache);
  run_campaign(first, prof, config_a);
  const std::set<std::string> workloads_a =
      campaign_workloads(Campaign::RandomNonBranch);
  // Four workers, one golden build per distinct workload — not per
  // worker (the pre-cache behavior this test pins down).
  EXPECT_EQ(cache->golden_builds(), workloads_a.size());

  CampaignConfig config_c = check::smoke_config(Campaign::IncorrectBranch);
  config_c.threads = 4;
  Injector second(cache);
  run_campaign(second, prof, config_c);
  std::set<std::string> all = workloads_a;
  const std::set<std::string> workloads_c =
      campaign_workloads(Campaign::IncorrectBranch);
  all.insert(workloads_c.begin(), workloads_c.end());
  // The second campaign (fresh Injector, same cache) only pays for
  // workloads the first never touched.
  EXPECT_EQ(cache->golden_builds(), all.size());
}

}  // namespace
}  // namespace kfi::inject
