// Property tests over the whole kernel image's instruction space:
// every single-bit flip of every kernel instruction must decode totally
// (valid or #UD, never a host-side failure), and the campaign C flip
// must always produce the reversed branch.
#include <gtest/gtest.h>

#include "inject/targets.h"
#include "isa/decode.h"

namespace kfi::inject {
namespace {

const kernel::KernelImage& image() { return kernel::built_kernel(); }

TEST(BitflipProperty, EveryKernelInstructionDecodes) {
  std::size_t instructions = 0;
  for (const kernel::KernelFunction& fn : image().functions) {
    const auto sites = enumerate_function(image(), fn);
    std::uint32_t covered = fn.start;
    for (const InstructionSite& site : sites) {
      EXPECT_EQ(site.addr, covered) << fn.name;
      covered += static_cast<std::uint32_t>(site.bytes.size());
      ++instructions;
    }
    EXPECT_EQ(covered, fn.end)
        << fn.name << ": function body must decode exactly to its end";
  }
  EXPECT_GT(instructions, 5000u);
}

TEST(BitflipProperty, AllSingleBitFlipsDecodeTotally) {
  std::uint64_t flips = 0;
  for (const kernel::KernelFunction& fn : image().functions) {
    for (const InstructionSite& site : enumerate_function(image(), fn)) {
      for (std::size_t byte = 0; byte < site.bytes.size(); ++byte) {
        for (int bit = 0; bit < 8; ++bit) {
          std::uint8_t buf[16] = {};
          for (std::size_t i = 0; i < site.bytes.size() && i < 16; ++i) {
            buf[i] = site.bytes[i];
          }
          buf[byte] = static_cast<std::uint8_t>(buf[byte] ^ (1u << bit));
          isa::Instruction instr;
          const isa::DecodeStatus status =
              isa::decode(buf, sizeof buf, instr);
          // Totality: every flip is Ok or Invalid (never Truncated with
          // 16 bytes of context, never UB).
          ASSERT_NE(status, isa::DecodeStatus::Truncated)
              << fn.name << " @" << std::hex << site.addr;
          if (status == isa::DecodeStatus::Ok) {
            ASSERT_GE(instr.length, 1);
            ASSERT_LE(instr.length, isa::kMaxInstructionLength);
          }
          ++flips;
        }
      }
    }
  }
  EXPECT_GT(flips, 100'000u);
}

TEST(BitflipProperty, CampaignCFlipAlwaysReversesCondition) {
  std::size_t branches = 0;
  for (const kernel::KernelFunction& fn : image().functions) {
    for (const InstructionSite& site : enumerate_function(image(), fn)) {
      if (!site.is_cond_branch) continue;
      ++branches;
      const int cond_byte = condition_byte_index(site);
      ASSERT_GE(cond_byte, 0) << fn.name;

      isa::Instruction original;
      ASSERT_EQ(isa::decode(site.bytes.data(), site.bytes.size(), original),
                isa::DecodeStatus::Ok);

      std::vector<std::uint8_t> corrupted = site.bytes;
      corrupted[static_cast<std::size_t>(cond_byte)] ^= 1;
      isa::Instruction reversed;
      ASSERT_EQ(isa::decode(corrupted.data(), corrupted.size(), reversed),
                isa::DecodeStatus::Ok);
      ASSERT_EQ(reversed.op, isa::Op::Jcc);
      EXPECT_EQ(static_cast<int>(reversed.cond),
                static_cast<int>(original.cond) ^ 1)
          << fn.name << " @" << std::hex << site.addr;
      EXPECT_EQ(reversed.rel, original.rel);
      EXPECT_EQ(reversed.length, original.length);
    }
  }
  EXPECT_GT(branches, 200u);
}

TEST(BitflipProperty, TargetsAreWithinTheirInstructions) {
  Rng rng(7);
  for (const kernel::KernelFunction& fn : image().functions) {
    for (const Campaign campaign :
         {Campaign::RandomNonBranch, Campaign::RandomBranch,
          Campaign::IncorrectBranch}) {
      for (const InjectionSpec& spec :
           make_targets(image(), fn, campaign, rng)) {
        EXPECT_GE(spec.instr_addr, fn.start);
        EXPECT_LT(spec.instr_addr, fn.end);
        EXPECT_LT(spec.byte_index, spec.instr_len);
        EXPECT_LT(spec.bit_index, 8);
        EXPECT_EQ(spec.subsystem, fn.subsystem);
      }
    }
  }
}

TEST(BitflipProperty, TargetGenerationIsSeedDeterministic) {
  const kernel::KernelFunction* fn = image().function("schedule");
  ASSERT_NE(fn, nullptr);
  Rng a(99);
  Rng b(99);
  const auto ta = make_targets(image(), *fn, Campaign::RandomNonBranch, a);
  const auto tb = make_targets(image(), *fn, Campaign::RandomNonBranch, b);
  ASSERT_EQ(ta.size(), tb.size());
  for (std::size_t i = 0; i < ta.size(); ++i) {
    EXPECT_EQ(ta[i].instr_addr, tb[i].instr_addr);
    EXPECT_EQ(ta[i].byte_index, tb[i].byte_index);
    EXPECT_EQ(ta[i].bit_index, tb[i].bit_index);
  }
}

TEST(BitflipProperty, HardenedKernelHasMoreBranches) {
  const kernel::KernelImage& hardened = kernel::built_hardened_kernel();
  auto count_branches = [](const kernel::KernelImage& img) {
    std::size_t n = 0;
    for (const kernel::KernelFunction& fn : img.functions) {
      for (const InstructionSite& site : enumerate_function(img, fn)) {
        if (site.is_cond_branch) ++n;
      }
    }
    return n;
  };
  EXPECT_GT(count_branches(hardened), count_branches(image()))
      << "//H! assertion sites must add conditional branches";
}

}  // namespace
}  // namespace kfi::inject
