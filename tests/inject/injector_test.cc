// Injection engine tests: trigger semantics, outcome classification,
// crash-cause mapping, latency, and the paper's §8 case studies.
#include "inject/injector.h"

#include <gtest/gtest.h>

#include "inject/campaign.h"
#include "inject/targets.h"

namespace kfi::inject {
namespace {

Injector& shared_injector() {
  static Injector injector;
  return injector;
}

const kernel::KernelImage& image() { return kernel::built_kernel(); }

// Builds a spec for a given site/byte/bit inside a function.
InjectionSpec spec_for(const char* function, const InstructionSite& site,
                       std::uint8_t byte_index, std::uint8_t bit_index,
                       const char* workload, Campaign campaign) {
  const kernel::KernelFunction* fn = image().function(function);
  InjectionSpec spec;
  spec.campaign = campaign;
  spec.function = function;
  spec.subsystem = fn->subsystem;
  spec.instr_addr = site.addr;
  spec.instr_len = static_cast<std::uint8_t>(site.bytes.size());
  spec.byte_index = byte_index;
  spec.bit_index = bit_index;
  spec.workload = workload;
  return spec;
}

TEST(Targets, EnumerateDecodesWholeFunction) {
  const kernel::KernelFunction* fn = image().function("pipe_read");
  ASSERT_NE(fn, nullptr);
  const auto sites = enumerate_function(image(), *fn);
  ASSERT_FALSE(sites.empty());
  // Sites are contiguous from the function start.
  std::uint32_t expect = fn->start;
  for (const InstructionSite& site : sites) {
    EXPECT_EQ(site.addr, expect);
    expect += static_cast<std::uint32_t>(site.bytes.size());
    EXPECT_NE(site.disasm, "(bad)");
  }
  EXPECT_EQ(expect, fn->end);
}

TEST(Targets, ConditionalBranchesFound) {
  const kernel::KernelFunction* fn = image().function("pipe_read");
  const auto sites = enumerate_function(image(), *fn);
  int cond_branches = 0;
  for (const InstructionSite& site : sites) {
    if (site.is_cond_branch) {
      ++cond_branches;
      EXPECT_GE(condition_byte_index(site), 0);
    }
  }
  EXPECT_GT(cond_branches, 2) << "pipe_read has several guards";
}

TEST(Targets, CampaignAExcludesBranches) {
  const kernel::KernelFunction* fn = image().function("schedule");
  Rng rng(1);
  const auto targets =
      make_targets(image(), *fn, Campaign::RandomNonBranch, rng);
  ASSERT_FALSE(targets.empty());
  const auto sites = enumerate_function(image(), *fn);
  for (const InjectionSpec& spec : targets) {
    for (const InstructionSite& site : sites) {
      if (site.addr == spec.instr_addr) {
        EXPECT_FALSE(site.is_branch);
      }
    }
  }
}

TEST(Targets, CampaignCOneTargetPerBranchConditionBit) {
  const kernel::KernelFunction* fn = image().function("pipe_read");
  Rng rng(1);
  const auto targets =
      make_targets(image(), *fn, Campaign::IncorrectBranch, rng);
  const auto sites = enumerate_function(image(), *fn);
  std::size_t cond_branches = 0;
  for (const auto& site : sites) {
    if (site.is_cond_branch) ++cond_branches;
  }
  EXPECT_EQ(targets.size(), cond_branches);
  for (const InjectionSpec& spec : targets) {
    EXPECT_EQ(spec.bit_index, 0u);
  }
}

TEST(Targets, RepeatsMultiplyRandomCampaigns) {
  const kernel::KernelFunction* fn = image().function("schedule");
  Rng rng1(1);
  Rng rng2(1);
  const auto once = make_targets(image(), *fn, Campaign::RandomNonBranch,
                                 rng1, 1);
  const auto thrice = make_targets(image(), *fn, Campaign::RandomNonBranch,
                                   rng2, 3);
  EXPECT_EQ(thrice.size(), once.size() * 3);
}

TEST(Injector, GoldenRunsCompleteForAllWorkloads) {
  for (const workloads::Workload& w : workloads::all_workloads()) {
    const GoldenRun& golden = shared_injector().golden(w.name);
    EXPECT_TRUE(golden.ok) << w.name;
    EXPECT_GT(golden.cycles, 0u) << w.name;
    EXPECT_NE(golden.fs_digest, 0u) << w.name;
  }
}

TEST(Injector, NeverExecutedTargetIsNotActivated) {
  // sys_unlink never runs under the pipe workload.
  const kernel::KernelFunction* fn = image().function("sys_unlink");
  ASSERT_NE(fn, nullptr);
  const auto sites = enumerate_function(image(), *fn);
  ASSERT_FALSE(sites.empty());
  const InjectionSpec spec = spec_for("sys_unlink", sites[0], 0, 3, "pipe",
                                      Campaign::RandomNonBranch);
  const InjectionResult result = shared_injector().run_one(spec);
  EXPECT_EQ(result.outcome, Outcome::NotActivated);
}

TEST(Injector, PipeReadGuardReversalIsFailSilenceViolation) {
  // The paper's §8 example: reversing pipe_read's type guard makes the
  // kernel return -ESPIPE to a correct read() -> fail silence violation.
  const kernel::KernelFunction* fn = image().function("pipe_read");
  ASSERT_NE(fn, nullptr);
  const auto sites = enumerate_function(image(), *fn);
  // First conditional branch = the guard at the function head.
  const InstructionSite* guard = nullptr;
  for (const InstructionSite& site : sites) {
    if (site.is_cond_branch) {
      guard = &site;
      break;
    }
  }
  ASSERT_NE(guard, nullptr);
  const InjectionSpec spec =
      spec_for("pipe_read", *guard,
               static_cast<std::uint8_t>(condition_byte_index(*guard)), 0,
               "pipe", Campaign::IncorrectBranch);
  const InjectionResult result = shared_injector().run_one(spec);
  EXPECT_EQ(result.outcome, Outcome::FailSilenceViolation)
      << outcome_name(result.outcome);
}

TEST(Injector, AssertReversalCrashesWithInvalidOpcode) {
  // free_pages() asserts the refcount is non-zero; reversing that
  // branch executes the BUG() ud2 (paper Table 7 example 4).
  const kernel::KernelFunction* fn = image().function("free_pages");
  ASSERT_NE(fn, nullptr);
  const auto sites = enumerate_function(image(), *fn);
  // Find the Jcc immediately preceding a ud2.
  const InstructionSite* guard = nullptr;
  for (std::size_t i = 0; i + 1 < sites.size(); ++i) {
    if (sites[i].is_cond_branch && sites[i + 1].disasm == "ud2a") {
      guard = &sites[i];
      break;
    }
  }
  ASSERT_NE(guard, nullptr) << "free_pages should contain assert + ud2";
  const InjectionSpec spec =
      spec_for("free_pages", *guard,
               static_cast<std::uint8_t>(condition_byte_index(*guard)), 0,
               "spawn", Campaign::IncorrectBranch);
  const InjectionResult result = shared_injector().run_one(spec);
  ASSERT_EQ(result.outcome, Outcome::DumpedCrash)
      << outcome_name(result.outcome);
  EXPECT_EQ(result.cause, CrashCause::InvalidOpcode);
  EXPECT_EQ(result.crash_subsystem, kernel::Subsystem::Mm);
  EXPECT_FALSE(result.propagated);
  EXPECT_LT(result.latency_cycles, 10u)
      << "the ud2 executes immediately after the reversed branch";
}

TEST(Injector, DisasmBeforeAfterRecorded) {
  const kernel::KernelFunction* fn = image().function("pipe_read");
  const auto sites = enumerate_function(image(), *fn);
  const InstructionSite* guard = nullptr;
  for (const InstructionSite& site : sites) {
    if (site.is_cond_branch) {
      guard = &site;
      break;
    }
  }
  ASSERT_NE(guard, nullptr);
  const InjectionSpec spec =
      spec_for("pipe_read", *guard,
               static_cast<std::uint8_t>(condition_byte_index(*guard)), 0,
               "pipe", Campaign::IncorrectBranch);
  const InjectionResult result = shared_injector().run_one(spec);
  EXPECT_FALSE(result.disasm_before.empty());
  EXPECT_FALSE(result.disasm_after.empty());
  EXPECT_NE(result.disasm_before, result.disasm_after)
      << "condition reversal changes the mnemonic";
}

TEST(Injector, SameSpecIsDeterministic) {
  const kernel::KernelFunction* fn = image().function("pipe_read");
  const auto sites = enumerate_function(image(), *fn);
  const InjectionSpec spec = spec_for("pipe_read", sites[2], 0, 5, "pipe",
                                      Campaign::RandomNonBranch);
  const InjectionResult a = shared_injector().run_one(spec);
  const InjectionResult b = shared_injector().run_one(spec);
  EXPECT_EQ(a.outcome, b.outcome);
  EXPECT_EQ(a.activation_cycle, b.activation_cycle);
  EXPECT_EQ(a.cause, b.cause);
  EXPECT_EQ(a.latency_cycles, b.latency_cycles);
}

TEST(Injector, ChainedEngineFlipSeversChainsAndMatchesStep) {
  // run_one's flip site invalidates the flipped page's cached blocks,
  // which with chaining also severs every link into them: the chained
  // injector must land on the same outcome, activation cycle, and
  // latency as the stepper for the same spec.
  const kernel::KernelFunction* fn = image().function("pipe_read");
  ASSERT_NE(fn, nullptr);
  const auto sites = enumerate_function(image(), *fn);
  const InjectionSpec spec = spec_for("pipe_read", sites[2], 0, 5, "pipe",
                                      Campaign::RandomNonBranch);
  InjectorOptions step_options;
  step_options.exec_engine = machine::ExecEngine::Step;
  InjectorOptions chain_options;
  chain_options.exec_engine = machine::ExecEngine::Chained;
  Injector step_inj(step_options);
  Injector chain_inj(chain_options);

  const InjectionResult a = step_inj.run_one(spec);
  const InjectionResult b = chain_inj.run_one(spec);
  EXPECT_EQ(a.outcome, b.outcome) << outcome_name(b.outcome);
  EXPECT_EQ(a.activation_cycle, b.activation_cycle);
  EXPECT_EQ(a.cause, b.cause);
  EXPECT_EQ(a.latency_cycles, b.latency_cycles);
  EXPECT_EQ(a.propagated, b.propagated);

  EXPECT_GT(chain_inj.perf_stats().chain_follows, 0u);
  EXPECT_GE(chain_inj.perf_stats().block_invalidations, 1u)
      << "the flip site must invalidate the cached block under it";
  EXPECT_EQ(step_inj.perf_stats().chain_follows, 0u);
  EXPECT_EQ(step_inj.perf_stats().block_ops, 0u);
}

TEST(Injector, ThreadedEngineFlipInvalidatesHandlersAndMatchesStep) {
  // Same contract as the chained test, but against the direct-threaded
  // engine: a flip landing inside a trace whose micro-ops already
  // carry resolved handler pointers and elided flag masks must
  // invalidate that cached state (the page-version bump forces a
  // rebuild, so stale no-flags handlers can never run over patched
  // bytes) and re-derive exactly the stepper's outcome, activation
  // cycle, and fault latency.
  const kernel::KernelFunction* fn = image().function("pipe_read");
  ASSERT_NE(fn, nullptr);
  const auto sites = enumerate_function(image(), *fn);
  const InjectionSpec spec = spec_for("pipe_read", sites[2], 0, 5, "pipe",
                                      Campaign::RandomNonBranch);
  InjectorOptions step_options;
  step_options.exec_engine = machine::ExecEngine::Step;
  InjectorOptions thread_options;
  thread_options.exec_engine = machine::ExecEngine::Threaded;
  Injector step_inj(step_options);
  Injector thread_inj(thread_options);

  const InjectionResult a = step_inj.run_one(spec);
  const InjectionResult b = thread_inj.run_one(spec);
  EXPECT_EQ(a.outcome, b.outcome) << outcome_name(b.outcome);
  EXPECT_EQ(a.activation_cycle, b.activation_cycle);
  EXPECT_EQ(a.cause, b.cause);
  EXPECT_EQ(a.latency_cycles, b.latency_cycles);
  EXPECT_EQ(a.propagated, b.propagated);

  EXPECT_GT(thread_inj.perf_stats().threaded_ops, 0u);
  EXPECT_GT(thread_inj.perf_stats().flag_elisions, 0u);
  EXPECT_GE(thread_inj.perf_stats().block_invalidations, 1u)
      << "the flip site must invalidate the threaded trace under it";
}

TEST(Injector, MemfastEngineFlipMatchesStepOnDataAndBranchSites) {
  // Same contract against the memfast engine, on both hazards it adds:
  // a flip landing on a page whose translation sits in the data-side
  // D-TLB (the version bump must still invalidate the cached trace —
  // the D-TLB caches translations, never bytes), and a reversed
  // conditional branch inside a widened trace (the flipped direction
  // must side-exit the predecoded edge, not follow it), re-deriving
  // exactly the stepper's outcome, activation cycle, and fault
  // latency — which includes the EFLAGS-driven branch decisions after
  // the flip.
  const kernel::KernelFunction* fn = image().function("pipe_read");
  ASSERT_NE(fn, nullptr);
  const auto sites = enumerate_function(image(), *fn);
  const InstructionSite* branch_site = nullptr;
  for (const InstructionSite& site : sites) {
    if (site.is_cond_branch) {
      branch_site = &site;
      break;
    }
  }
  ASSERT_NE(branch_site, nullptr);

  const InjectionSpec specs[] = {
      spec_for("pipe_read", sites[2], 0, 5, "pipe",
               Campaign::RandomNonBranch),
      spec_for("pipe_read", *branch_site,
               static_cast<std::uint8_t>(condition_byte_index(*branch_site)),
               0, "pipe", Campaign::IncorrectBranch),
  };
  InjectorOptions step_options;
  step_options.exec_engine = machine::ExecEngine::Step;
  InjectorOptions fast_options;
  fast_options.exec_engine = machine::ExecEngine::Memfast;
  Injector step_inj(step_options);
  Injector fast_inj(fast_options);

  for (const InjectionSpec& spec : specs) {
    SCOPED_TRACE(spec.campaign == Campaign::IncorrectBranch ? "branch"
                                                            : "data");
    const InjectionResult a = step_inj.run_one(spec);
    const InjectionResult b = fast_inj.run_one(spec);
    EXPECT_EQ(a.outcome, b.outcome) << outcome_name(b.outcome);
    EXPECT_EQ(a.activation_cycle, b.activation_cycle);
    EXPECT_EQ(a.cause, b.cause);
    EXPECT_EQ(a.latency_cycles, b.latency_cycles);
    EXPECT_EQ(a.propagated, b.propagated);
  }

  EXPECT_GT(fast_inj.perf_stats().dtlb_hits, 0u);
  EXPECT_GT(fast_inj.perf_stats().cond_widened, 0u);
  EXPECT_GT(fast_inj.perf_stats().side_exits, 0u);
  EXPECT_GE(fast_inj.perf_stats().block_invalidations, 1u)
      << "the flip site must invalidate the widened trace under it";
  EXPECT_EQ(step_inj.perf_stats().dtlb_hits, 0u);
}

TEST(Campaign, SmallCampaignCProducesPlausibleMix) {
  CampaignConfig config;
  config.campaign = Campaign::IncorrectBranch;
  config.functions = {"pipe_read", "pipe_write", "schedule", "sys_read",
                      "do_generic_file_read"};
  CampaignRun run =
      run_campaign(shared_injector(), profile::default_profile(), config);
  ASSERT_GT(run.results.size(), 10u);
  EXPECT_EQ(run.functions_targeted, 5u);

  std::size_t activated = 0;
  for (const InjectionResult& r : run.results) {
    if (r.outcome != Outcome::NotActivated) ++activated;
  }
  EXPECT_GT(activated, 0u) << "hot-path branches must activate";
}

TEST(Campaign, DefaultFunctionSelection) {
  const auto& prof = profile::default_profile();
  const auto a = default_functions(Campaign::RandomNonBranch, prof, 0.95);
  const auto c = default_functions(Campaign::IncorrectBranch, prof, 0.95);
  EXPECT_FALSE(a.empty());
  EXPECT_GE(c.size(), a.size()) << "branch campaigns widen the list";
}

}  // namespace
}  // namespace kfi::inject
