// Fault-model campaigns D/E/F: register-file bit flips, kernel-data
// bit flips, and syscall-errno injection.  Covers target generation
// (every spec carries its model), the per-model injection semantics
// (exactly one bit flipped, footprint resolution, forced -errno), and
// the cross-engine identity contract the instruction campaigns already
// pin.
#include <gtest/gtest.h>

#include <algorithm>

#include "check/expectations.h"
#include "inject/campaign.h"
#include "inject/injector.h"
#include "inject/targets.h"
#include "isa/isa.h"
#include "kernel/koffsets.h"
#include "profile/profile.h"
#include "trace/trace.h"
#include "vm/layout.h"

namespace kfi::inject {
namespace {

const kernel::KernelImage& image() { return kernel::built_kernel(); }

Injector& shared_injector() {
  static Injector injector;
  return injector;
}

// A trigger site the pipe workload demonstrably executes (the same
// site the instruction-campaign tests inject at).
InstructionSite covered_site() {
  const kernel::KernelFunction* fn = image().function("pipe_read");
  const auto sites = enumerate_function(image(), *fn);
  return sites[2];
}

InjectionSpec register_spec(std::uint8_t target_reg, std::uint8_t bit) {
  const InstructionSite site = covered_site();
  InjectionSpec spec;
  spec.campaign = Campaign::RegisterFile;
  spec.model = FaultModel::RegisterBit;
  spec.function = "pipe_read";
  spec.subsystem = image().function("pipe_read")->subsystem;
  spec.instr_addr = site.addr;
  spec.instr_len = static_cast<std::uint8_t>(site.bytes.size());
  spec.target_reg = target_reg;
  spec.bit_index = bit;
  spec.workload = "pipe";
  return spec;
}

InjectionSpec data_spec(std::uint32_t data_addr, std::uint32_t data_index,
                        std::uint8_t bit) {
  InjectionSpec spec = register_spec(0, bit);
  spec.campaign = Campaign::KernelData;
  spec.model = FaultModel::DataBit;
  spec.target_reg = 0;
  spec.data_addr = data_addr;
  spec.data_index = data_index;
  return spec;
}

InjectionSpec errno_spec(std::uint32_t errno_value,
                         std::uint32_t data_index) {
  InjectionSpec spec;
  spec.campaign = Campaign::SyscallErrno;
  spec.model = FaultModel::SyscallErrno;
  spec.function = "system_call";
  spec.subsystem = kernel::Subsystem::Arch;
  spec.instr_addr = syscall_return_site(image());
  spec.errno_value = errno_value;
  spec.data_index = data_index;
  spec.workload = "syscall";
  return spec;
}

TEST(FaultModelTargets, EveryCampaignDSpecIsARegisterBitFault) {
  const auto targets = campaign_targets(
      profile::default_profile(),
      check::smoke_config(Campaign::RegisterFile), nullptr);
  ASSERT_FALSE(targets.empty());
  for (const InjectionSpec& spec : targets) {
    EXPECT_EQ(spec.model, FaultModel::RegisterBit);
    EXPECT_LE(spec.target_reg, kEflagsTarget);
    EXPECT_LT(spec.bit_index, 32u);
    if (spec.target_reg == kEflagsTarget) {
      // EFLAGS flips must land on a modeled flag bit, or the flip
      // would be silently dropped by the narrow flag model.
      const std::uint32_t word = 1u << spec.bit_index;
      const std::uint32_t modeled =
          isa::Flags::from_word(word).to_word() & ~(1u << 1);
      EXPECT_EQ(modeled, word) << "bit " << int(spec.bit_index);
    }
  }
}

TEST(FaultModelTargets, EveryCampaignFSpecHitsTheSyscallReturnSite) {
  const std::uint32_t site = syscall_return_site(image());
  ASSERT_NE(site, 0u);
  const auto targets = campaign_targets(
      profile::default_profile(),
      check::smoke_config(Campaign::SyscallErrno), nullptr);
  ASSERT_FALSE(targets.empty());
  for (const InjectionSpec& spec : targets) {
    EXPECT_EQ(spec.model, FaultModel::SyscallErrno);
    EXPECT_EQ(spec.instr_addr, site);
    EXPECT_GT(spec.errno_value, 0u);
    EXPECT_LT(spec.errno_value, 4096u);
  }
}

TEST(FaultModel, RegisterFlipChangesExactlyOneBit) {
  // Under the forensics trace, the InjectFlip event carries the
  // register word before and after: their XOR must be a single bit,
  // and exactly the requested one.
  InjectorOptions options;
  options.trace_capacity = trace::TraceBuffer::kDefaultCapacity;
  Injector injector(options);
  const InjectionSpec spec = register_spec(/*target_reg=*/0, /*bit=*/3);
  const InjectionResult result = injector.run_one(spec);
  EXPECT_NE(result.outcome, Outcome::NotActivated);

  bool saw_flip = false;
  for (const trace::Event& event : injector.trace()->events()) {
    if (event.kind != trace::EventKind::InjectFlip) continue;
    saw_flip = true;
    EXPECT_EQ(event.c ^ event.d, 1u << spec.bit_index);
    EXPECT_EQ(event.b & 0xFFu, spec.bit_index);
    EXPECT_EQ(event.b >> 8, spec.target_reg);
  }
  EXPECT_TRUE(saw_flip) << "no InjectFlip event recorded";
}

TEST(FaultModel, EflagsFlipTargetsAModeledBit) {
  InjectorOptions options;
  options.trace_capacity = trace::TraceBuffer::kDefaultCapacity;
  Injector injector(options);
  const InjectionSpec spec = register_spec(kEflagsTarget, /*bit=*/6);  // ZF
  const InjectionResult result = injector.run_one(spec);
  EXPECT_NE(result.outcome, Outcome::NotActivated);
  bool saw_flip = false;
  for (const trace::Event& event : injector.trace()->events()) {
    if (event.kind != trace::EventKind::InjectFlip) continue;
    saw_flip = true;
    EXPECT_EQ(event.c ^ event.d, 1u << 6);
    EXPECT_EQ(event.b >> 8, static_cast<std::uint32_t>(kEflagsTarget));
  }
  EXPECT_TRUE(saw_flip);
}

TEST(FaultModel, RegisterFlipRederivesIdenticallyAcrossAllEngines) {
  // The cross-engine identity contract extends to the register model:
  // whatever the stepper concludes, every accelerated engine must
  // re-derive bit for bit.
  const InjectionSpec spec = register_spec(/*target_reg=*/2, /*bit=*/7);
  InjectorOptions step_options;
  step_options.exec_engine = machine::ExecEngine::Step;
  Injector step_inj(step_options);
  const InjectionResult ref = step_inj.run_one(spec);

  for (const machine::ExecEngine engine :
       {machine::ExecEngine::Block, machine::ExecEngine::Chained,
        machine::ExecEngine::Threaded, machine::ExecEngine::Memfast}) {
    InjectorOptions options;
    options.exec_engine = engine;
    Injector injector(options);
    const InjectionResult got = injector.run_one(spec);
    SCOPED_TRACE(static_cast<int>(engine));
    EXPECT_EQ(got.outcome, ref.outcome) << outcome_name(got.outcome);
    EXPECT_EQ(got.activation_cycle, ref.activation_cycle);
    EXPECT_EQ(got.cause, ref.cause);
    EXPECT_EQ(got.latency_cycles, ref.latency_cycles);
  }
}

TEST(FaultModel, DataFlipOutsideTheFootprintDoesNotManifest) {
  // A byte no kernel store ever touched (top of RAM) is flipped at
  // trigger time: the run must complete with golden-identical output.
  const std::uint32_t quiet_addr = vm::kRamSize - 64;
  const auto& footprint =
      shared_injector().cache()->workload("pipe").write_footprint;
  ASSERT_FALSE(footprint.empty());
  ASSERT_FALSE(std::binary_search(footprint.begin(), footprint.end(),
                                  quiet_addr));
  const InjectionSpec spec = data_spec(quiet_addr, 0, /*bit=*/5);
  const InjectionResult result = shared_injector().run_one(spec);
  EXPECT_EQ(result.outcome, Outcome::NotManifested)
      << outcome_name(result.outcome);
  EXPECT_EQ(result.data_addr, quiet_addr);
}

TEST(FaultModel, DataFlipResolvesThroughTheWriteFootprint) {
  const auto& footprint =
      shared_injector().cache()->workload("pipe").write_footprint;
  ASSERT_FALSE(footprint.empty());
  const std::uint32_t index = 7;
  const InjectionSpec spec = data_spec(/*data_addr=*/0, index, /*bit=*/0);
  const InjectionResult result = shared_injector().run_one(spec);
  EXPECT_NE(result.outcome, Outcome::NotActivated);
  EXPECT_EQ(result.data_addr, footprint[index % footprint.size()]);

  const InjectionResult again = shared_injector().run_one(spec);
  EXPECT_EQ(again.outcome, result.outcome);
  EXPECT_EQ(again.activation_cycle, result.activation_cycle);
  EXPECT_EQ(again.data_addr, result.data_addr);
}

TEST(FaultModel, ErrnoInjectionForcesTheFailureAndCountsTheCascade) {
  // Inject EBADF into the third successful syscall exit of the syscall
  // workload.  Activation is structural (the golden timeline proves
  // the exit exists), the forced failure is visible to the workload,
  // and the cascade counters are deterministic — pinned here so a
  // drift in syscall accounting fails loudly.
  const InjectionSpec spec = errno_spec(kernel::KE_EBADF, /*data_index=*/2);
  const InjectionResult result = shared_injector().run_one(spec);
  EXPECT_NE(result.outcome, Outcome::NotActivated);
  EXPECT_GT(result.syscalls_after, 0u);

  const InjectionResult again = shared_injector().run_one(spec);
  EXPECT_EQ(again.outcome, result.outcome);
  EXPECT_EQ(again.activation_cycle, result.activation_cycle);
  EXPECT_EQ(again.syscalls_after, result.syscalls_after);
  EXPECT_EQ(again.cascade_syscalls, result.cascade_syscalls);
}

TEST(FaultModel, ErrnoInjectionMatchesAcrossStepAndMemfast) {
  const InjectionSpec spec = errno_spec(kernel::KE_ENOMEM, /*data_index=*/0);
  InjectorOptions step_options;
  step_options.exec_engine = machine::ExecEngine::Step;
  InjectorOptions fast_options;
  fast_options.exec_engine = machine::ExecEngine::Memfast;
  Injector step_inj(step_options);
  Injector fast_inj(fast_options);
  const InjectionResult a = step_inj.run_one(spec);
  const InjectionResult b = fast_inj.run_one(spec);
  EXPECT_EQ(a.outcome, b.outcome) << outcome_name(b.outcome);
  EXPECT_EQ(a.activation_cycle, b.activation_cycle);
  EXPECT_EQ(a.syscalls_after, b.syscalls_after);
  EXPECT_EQ(a.cascade_syscalls, b.cascade_syscalls);
}

}  // namespace
}  // namespace kfi::inject
