// Seed-driven fuzz battery over the fault-model target generators
// (campaigns D/E/F).  For every seed the generated spec population
// must satisfy the structural contract of its shape — model tag,
// register/bit ranges, modeled EFLAGS bits, errno range, trigger
// placement — and re-derive bit-identically from the same seed (the
// sharded service re-generates targets inside every worker, so any
// impurity here silently splits a campaign across processes).
//
// Failing seeds are appended to fault_model_fuzz_failures.txt in the
// working directory, one "<shape> <seed>" per line, so a red CI run
// reproduces offline (the CI job uploads the file as an artifact).
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "check/expectations.h"
#include "inject/campaign.h"
#include "inject/targets.h"
#include "isa/isa.h"
#include "profile/profile.h"

namespace kfi::inject {
namespace {

const kernel::KernelImage& image() { return kernel::built_kernel(); }

constexpr int kSeeds = 64;

// One structural check per spec; returns a non-empty message on the
// first violated invariant.
std::string check_spec(Campaign campaign, const InjectionSpec& spec) {
  if (spec.campaign != campaign) return "campaign tag mismatch";
  switch (campaign) {
    case Campaign::RegisterFile: {
      if (spec.model != FaultModel::RegisterBit) return "model != RegisterBit";
      if (spec.target_reg > kEflagsTarget) return "target_reg out of range";
      if (spec.bit_index >= 32) return "bit_index out of range";
      if (spec.target_reg == kEflagsTarget) {
        const std::uint32_t word = 1u << spec.bit_index;
        const std::uint32_t modeled =
            isa::Flags::from_word(word).to_word() & ~(1u << 1);
        if (modeled != word) return "EFLAGS flip on an unmodeled bit";
      }
      return {};
    }
    case Campaign::KernelData:
      if (spec.model != FaultModel::DataBit) return "model != DataBit";
      if (spec.bit_index >= 8) return "bit_index out of range";
      return {};
    case Campaign::SyscallErrno:
      if (spec.model != FaultModel::SyscallErrno) {
        return "model != SyscallErrno";
      }
      if (spec.instr_addr != syscall_return_site(image())) {
        return "trigger is not the syscall return site";
      }
      if (spec.errno_value == 0 || spec.errno_value >= 4096) {
        return "errno_value out of range";
      }
      return {};
    default:
      return "unexpected campaign";
  }
}

std::string compare_specs(const std::vector<InjectionSpec>& a,
                          const std::vector<InjectionSpec>& b) {
  if (a.size() != b.size()) return "re-derived population size differs";
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].instr_addr != b[i].instr_addr ||
        a[i].target_reg != b[i].target_reg ||
        a[i].bit_index != b[i].bit_index ||
        a[i].data_index != b[i].data_index ||
        a[i].errno_value != b[i].errno_value ||
        a[i].workload != b[i].workload) {
      return "re-derived spec differs at index " + std::to_string(i);
    }
  }
  return {};
}

void fuzz_campaign(Campaign campaign, const char* shape) {
  std::vector<std::uint64_t> failures;
  for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
    CampaignConfig config = check::smoke_config(campaign);
    config.seed = seed;
    const auto targets =
        campaign_targets(profile::default_profile(), config, nullptr);
    std::string err;
    if (targets.empty()) {
      err = "empty target population";
    } else {
      const auto again =
          campaign_targets(profile::default_profile(), config, nullptr);
      err = compare_specs(targets, again);
      for (const InjectionSpec& spec : targets) {
        if (!err.empty()) break;
        err = check_spec(campaign, spec);
      }
    }
    if (!err.empty()) {
      failures.push_back(seed);
      if (failures.size() <= 10) {
        ADD_FAILURE() << shape << " seed " << seed << ": " << err;
      }
    }
  }

  if (!failures.empty()) {
    // Reproduction list for the CI failure artifact.
    if (std::FILE* f = std::fopen("fault_model_fuzz_failures.txt", "a")) {
      for (const std::uint64_t seed : failures) {
        std::fprintf(f, "%s %llu\n", shape,
                     static_cast<unsigned long long>(seed));
      }
      std::fclose(f);
    }
    ADD_FAILURE() << failures.size() << " of " << kSeeds << " " << shape
                  << " seeds violated the spec contract "
                  << "(list in fault_model_fuzz_failures.txt)";
  }
}

TEST(FaultModelFuzz, RegisterSpecsHoldAcrossSeeds) {
  fuzz_campaign(Campaign::RegisterFile, "register-bit");
}

TEST(FaultModelFuzz, DataSpecsHoldAcrossSeeds) {
  fuzz_campaign(Campaign::KernelData, "data-bit");
}

TEST(FaultModelFuzz, ErrnoSpecsHoldAcrossSeeds) {
  fuzz_campaign(Campaign::SyscallErrno, "syscall-errno");
}

}  // namespace
}  // namespace kfi::inject
