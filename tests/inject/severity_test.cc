// Targeted end-to-end injections reproducing specific paper scenarios:
// hangs, file-system damage (Table 5 mechanisms), and severity grading.
#include <gtest/gtest.h>

#include "inject/injector.h"
#include "inject/targets.h"

namespace kfi::inject {
namespace {

Injector& shared_injector() {
  static Injector injector;
  return injector;
}

const kernel::KernelImage& image() { return kernel::built_kernel(); }

// Returns the nth conditional branch of `function` (0-based).
const InstructionSite* nth_branch(const char* function, int n,
                                  std::vector<InstructionSite>& storage) {
  const kernel::KernelFunction* fn = image().function(function);
  if (fn == nullptr) return nullptr;
  storage = enumerate_function(image(), *fn);
  int seen = 0;
  for (const InstructionSite& site : storage) {
    if (site.is_cond_branch) {
      if (seen == n) return &site;
      ++seen;
    }
  }
  return nullptr;
}

InjectionSpec reversal_spec(const char* function,
                            const InstructionSite& site,
                            const char* workload) {
  InjectionSpec spec;
  spec.campaign = Campaign::IncorrectBranch;
  spec.function = function;
  spec.subsystem = image().function(function)->subsystem;
  spec.instr_addr = site.addr;
  spec.instr_len = static_cast<std::uint8_t>(site.bytes.size());
  spec.byte_index =
      static_cast<std::uint8_t>(condition_byte_index(site));
  spec.bit_index = 0;
  spec.workload = workload;
  return spec;
}

TEST(SeverityScenarios, BlockBitmapGuardReversalIsTable5Case7Analog) {
  // Reversing kfs_alloc_block's "bit already set?" guard makes the
  // allocator hand out blocks that are in use — the paper's Table 5
  // case 7 ("kernel reuses a page/block which is in use").  Under the
  // fstime workload this overwrites live file data on disk.
  std::vector<InstructionSite> sites;
  const kernel::KernelFunction* fn = image().function("kfs_alloc_block");
  ASSERT_NE(fn, nullptr);
  sites = enumerate_function(image(), *fn);

  bool saw_damage = false;
  for (const InstructionSite& site : sites) {
    if (!site.is_cond_branch) continue;
    const InjectionResult result = shared_injector().run_one(
        reversal_spec("kfs_alloc_block", site, "fstime"));
    if (result.outcome == Outcome::NotActivated) continue;
    if (result.fs_damaged) {
      saw_damage = true;
      EXPECT_NE(result.severity, Severity::NotApplicable);
      EXPECT_NE(result.severity, Severity::Normal);
    }
  }
  EXPECT_TRUE(saw_damage)
      << "at least one reversed allocator guard must damage the fs";
}

TEST(SeverityScenarios, SchedulerLoopReversalCanHang) {
  // Reversing branches in the scheduler's selection loop produces
  // hangs (watchdog) or crashes; sweep them and require at least one
  // non-completing outcome.
  const kernel::KernelFunction* fn = image().function("schedule");
  ASSERT_NE(fn, nullptr);
  const auto sites = enumerate_function(image(), *fn);
  bool saw_stuck = false;
  for (const InstructionSite& site : sites) {
    if (!site.is_cond_branch) continue;
    const InjectionResult result = shared_injector().run_one(
        reversal_spec("schedule", site, "context1"));
    if (result.outcome == Outcome::HangUnknown ||
        result.outcome == Outcome::DumpedCrash) {
      saw_stuck = true;
      break;
    }
  }
  EXPECT_TRUE(saw_stuck);
}

TEST(SeverityScenarios, CrashesGetSeverityAndHangsToo) {
  // Every crash/hang outcome must carry a severity grade; every
  // completed outcome must not.
  const kernel::KernelFunction* fn = image().function("pipe_write");
  ASSERT_NE(fn, nullptr);
  const auto sites = enumerate_function(image(), *fn);
  int graded = 0;
  for (const InstructionSite& site : sites) {
    if (!site.is_cond_branch) continue;
    const InjectionResult result = shared_injector().run_one(
        reversal_spec("pipe_write", site, "pipe"));
    switch (result.outcome) {
      case Outcome::DumpedCrash:
      case Outcome::HangUnknown:
        EXPECT_NE(result.severity, Severity::NotApplicable);
        if (result.severity == Severity::Severe) {
          EXPECT_TRUE(result.repair_verified)
              << "a severe grading must be backed by a successful repair";
        }
        ++graded;
        break;
      case Outcome::NotManifested:
        EXPECT_EQ(result.severity, Severity::NotApplicable);
        break;
      default:
        break;
    }
  }
  EXPECT_GT(graded, 0);
}

TEST(SeverityScenarios, GenericCommitWriteReversalDamagesSizes) {
  // Table 5 case 8: generic_commit_write reduces inode->i_size.
  // Reversing its "grew past the old size?" branch must produce a
  // fail-silence violation or fs damage under fstime.
  std::vector<InstructionSite> storage;
  const InstructionSite* guard =
      nth_branch("generic_commit_write", 0, storage);
  ASSERT_NE(guard, nullptr);
  const InjectionResult result = shared_injector().run_one(
      reversal_spec("generic_commit_write", *guard, "fstime"));
  ASSERT_NE(result.outcome, Outcome::NotActivated);
  EXPECT_TRUE(result.outcome == Outcome::FailSilenceViolation ||
              result.outcome == Outcome::DumpedCrash ||
              result.fs_damaged)
      << outcome_name(result.outcome);
}

TEST(SeverityScenarios, RepeatabilityOfAMostSevereCandidate) {
  // The paper marks 4 of its 9 most-severe crashes "repeatable"; with a
  // deterministic machine, every injection here is repeatable.  Verify
  // on a damaging case.
  const kernel::KernelFunction* fn = image().function("kfs_alloc_block");
  const auto sites = enumerate_function(image(), *fn);
  const InstructionSite* guard = nullptr;
  InjectionResult first;
  for (const InstructionSite& site : sites) {
    if (!site.is_cond_branch) continue;
    const InjectionResult r = shared_injector().run_one(
        reversal_spec("kfs_alloc_block", site, "fstime"));
    if (r.outcome != Outcome::NotActivated && r.fs_damaged) {
      guard = &site;
      first = r;
      break;
    }
  }
  if (guard == nullptr) GTEST_SKIP() << "no damaging guard in this build";
  const InjectionResult second = shared_injector().run_one(
      reversal_spec("kfs_alloc_block", *guard, "fstime"));
  EXPECT_EQ(second.outcome, first.outcome);
  EXPECT_EQ(second.fs_damaged, first.fs_damaged);
  EXPECT_EQ(second.bootable, first.bootable);
  EXPECT_EQ(second.severity, first.severity);
}

}  // namespace
}  // namespace kfi::inject
