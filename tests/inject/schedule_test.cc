// Chunk formation and work-stealing drain: chunks partition the
// campaign order without crossing workload boundaries, and the
// scheduler hands every chunk out exactly once — serially, under
// concurrent stealing races, and when one worker drains everything.
#include "inject/schedule.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <mutex>
#include <numeric>
#include <thread>
#include <vector>

namespace kfi::inject {
namespace {

// A synthetic campaign order: `counts[i]` items of workload i, already
// sorted by workload (as run_campaign's order always is).
std::vector<InjectionSpec> make_targets(const std::vector<int>& counts) {
  std::vector<InjectionSpec> targets;
  for (std::size_t w = 0; w < counts.size(); ++w) {
    for (int i = 0; i < counts[w]; ++i) {
      InjectionSpec spec;
      spec.workload = "wl" + std::to_string(w);
      targets.push_back(spec);
    }
  }
  return targets;
}

std::vector<std::size_t> identity_order(std::size_t n) {
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  return order;
}

TEST(Schedule, ChunksPartitionWithoutCrossingWorkloads) {
  const std::vector<InjectionSpec> targets = make_targets({37, 3, 101, 1, 58});
  const std::vector<std::size_t> order = identity_order(targets.size());
  for (const unsigned workers : {1u, 2u, 4u, 8u, 64u}) {
    const std::vector<Chunk> chunks = make_chunks(order, targets, workers);
    ASSERT_FALSE(chunks.empty());
    std::size_t expect_begin = 0;
    for (const Chunk& chunk : chunks) {
      // Contiguous, non-overlapping, non-empty cover of [0, n).
      EXPECT_EQ(chunk.begin, expect_begin);
      ASSERT_LT(chunk.begin, chunk.end);
      expect_begin = chunk.end;
      // One workload per chunk.
      const std::string& workload = targets[order[chunk.begin]].workload;
      for (std::size_t i = chunk.begin; i < chunk.end; ++i) {
        EXPECT_EQ(targets[order[i]].workload, workload);
      }
    }
    EXPECT_EQ(expect_begin, order.size());
    // Deterministic: same inputs, same cuts.
    EXPECT_EQ(make_chunks(order, targets, workers).size(), chunks.size());
  }
  EXPECT_TRUE(make_chunks({}, targets, 4).empty());
}

TEST(Schedule, SingleWorkerDrainsInOrder) {
  const std::vector<InjectionSpec> targets = make_targets({20, 20});
  const std::vector<std::size_t> order = identity_order(targets.size());
  ChunkScheduler scheduler(make_chunks(order, targets, 1), 1);
  Chunk chunk;
  std::size_t expect_begin = 0;
  while (scheduler.next(0, chunk)) {
    EXPECT_EQ(chunk.begin, expect_begin);
    expect_begin = chunk.end;
  }
  EXPECT_EQ(expect_begin, order.size());
  EXPECT_EQ(scheduler.steals(), 0u);
  EXPECT_FALSE(scheduler.next(0, chunk));
}

TEST(Schedule, IdleWorkerStealsEverything) {
  const std::vector<InjectionSpec> targets = make_targets({64});
  const std::vector<std::size_t> order = identity_order(targets.size());
  const std::vector<Chunk> chunks = make_chunks(order, targets, 2);
  ASSERT_GT(chunks.size(), 2u);
  ChunkScheduler scheduler(chunks, 2);
  // Worker 0 never calls next(); worker 1 must still drain every item,
  // taking worker 0's share off the back of its deque.
  std::vector<bool> seen(order.size(), false);
  Chunk chunk;
  while (scheduler.next(1, chunk)) {
    for (std::size_t i = chunk.begin; i < chunk.end; ++i) {
      EXPECT_FALSE(seen[i]);
      seen[i] = true;
    }
  }
  EXPECT_TRUE(std::all_of(seen.begin(), seen.end(), [](bool b) { return b; }));
  EXPECT_GT(scheduler.steals(), 0u);
}

TEST(Schedule, ConcurrentDrainIsExactlyOnce) {
  const std::vector<InjectionSpec> targets = make_targets({500, 7, 300, 193});
  const std::vector<std::size_t> order = identity_order(targets.size());
  constexpr unsigned kWorkers = 8;
  for (int round = 0; round < 20; ++round) {
    ChunkScheduler scheduler(make_chunks(order, targets, kWorkers), kWorkers);
    std::vector<std::atomic<int>> taken(order.size());
    for (auto& t : taken) t.store(0);
    std::vector<std::thread> threads;
    for (unsigned w = 0; w < kWorkers; ++w) {
      threads.emplace_back([&, w] {
        Chunk chunk;
        while (scheduler.next(w, chunk)) {
          for (std::size_t i = chunk.begin; i < chunk.end; ++i) {
            taken[i].fetch_add(1, std::memory_order_relaxed);
          }
        }
      });
    }
    for (std::thread& t : threads) t.join();
    for (std::size_t i = 0; i < taken.size(); ++i) {
      ASSERT_EQ(taken[i].load(), 1) << "position " << i << " round " << round;
    }
    Chunk chunk;
    EXPECT_FALSE(scheduler.next(3, chunk));
  }
}

}  // namespace
}  // namespace kfi::inject
