// Workload build pipeline tests.
#include "workloads/workloads.h"

#include <gtest/gtest.h>

#include "vm/layout.h"

namespace kfi::workloads {
namespace {

TEST(Workloads, AllNinePresent) {
  const auto& all = all_workloads();
  EXPECT_EQ(all.size(), 9u);  // the paper's eight + the netio extension
  for (const char* name : {"context1", "dhry", "fstime", "hanoi", "looper",
                           "pipe", "spawn", "syscall", "netio"}) {
    EXPECT_NE(find_workload(name), nullptr) << name;
  }
  EXPECT_EQ(find_workload("quake"), nullptr);
}

TEST(Workloads, EveryWorkloadBuilds) {
  for (const Workload& w : all_workloads()) {
    const WorkloadBuildResult result = build_workload(w);
    EXPECT_TRUE(result.ok) << w.name << ": "
                           << (result.errors.empty() ? "?"
                                                     : result.errors[0]);
    EXPECT_FALSE(result.image.text.empty()) << w.name;
    EXPECT_EQ(result.image.text_base, vm::kUserTextBase) << w.name;
    EXPECT_EQ(result.image.data_base, vm::kUserDataBase) << w.name;
    EXPECT_GE(result.image.entry, vm::kUserTextBase) << w.name;
    EXPECT_LT(result.image.entry,
              vm::kUserTextBase + result.image.text.size())
        << w.name;
  }
}

TEST(Workloads, BuildIsDeterministic) {
  const Workload* w = find_workload("fstime");
  ASSERT_NE(w, nullptr);
  const WorkloadBuildResult a = build_workload(*w);
  const WorkloadBuildResult b = build_workload(*w);
  ASSERT_TRUE(a.ok && b.ok);
  EXPECT_EQ(a.image.text, b.image.text);
  EXPECT_EQ(a.image.data, b.image.data);
  EXPECT_EQ(a.image.entry, b.image.entry);
}

TEST(Workloads, CachedBuildReturnsSameInstance) {
  const WorkloadImage& a = built_workload("pipe");
  const WorkloadImage& b = built_workload("pipe");
  EXPECT_EQ(&a, &b);
}

TEST(Workloads, UnknownWorkloadThrows) {
  EXPECT_THROW(built_workload("no-such-workload"), std::runtime_error);
}

TEST(Workloads, BrokenSourceReportsErrors) {
  Workload broken;
  broken.name = "broken";
  broken.source = "func main() { return undeclared_thing; }";
  const WorkloadBuildResult result = build_workload(broken);
  EXPECT_FALSE(result.ok);
  EXPECT_FALSE(result.errors.empty());
}

TEST(Workloads, ImagesFitTheReservedPhysWindow) {
  for (const Workload& w : all_workloads()) {
    const WorkloadBuildResult result = build_workload(w);
    ASSERT_TRUE(result.ok) << w.name;
    const std::size_t total =
        ((result.image.text.size() + vm::kPageMask) & ~std::size_t{vm::kPageMask}) +
        ((result.image.data.size() + vm::kPageMask) & ~std::size_t{vm::kPageMask});
    EXPECT_LE(total, std::size_t{0x00100000}) << w.name;
  }
}

}  // namespace
}  // namespace kfi::workloads
