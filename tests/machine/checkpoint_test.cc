// Checkpoint-ladder equivalence: resuming from any golden-run
// checkpoint must continue the exact deterministic timeline a
// straight-line run from the post-boot snapshot follows — the
// state_digest proves bit-identity of registers, RAM, disk, console,
// and the cycle counter.
#include "machine/machine.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "inject/campaign.h"
#include "check/expectations.h"
#include "check/replay.h"
#include "profile/profile.h"

namespace kfi::machine {
namespace {

constexpr std::uint64_t kBudget = 30'000'000;

std::unique_ptr<Machine> make_machine(const std::string& workload,
                                      const MachineOptions& options = {}) {
  static const disk::DiskImage root_disk = make_root_disk();
  auto machine = std::make_unique<Machine>(kernel::built_kernel(),
                                           workloads::built_workload(workload),
                                           root_disk, options);
  return machine;
}

TEST(Checkpoint, EveryRungResumesBitIdentically) {
  auto machine = make_machine("pipe");
  ASSERT_TRUE(machine->boot()) << machine->console_output();
  const std::uint64_t start = machine->snapshot_cycles();

  machine->restore();
  const RunResult straight = machine->run(kBudget);
  ASSERT_EQ(straight.exit, RunExit::Completed);
  const std::uint64_t end_digest = machine->state_digest();
  const std::uint64_t length = machine->cpu().cycles() - start;

  std::vector<std::uint64_t> at;
  for (int k = 1; k <= 8; ++k) at.push_back(start + length * k / 9);
  std::vector<Checkpoint> ladder = machine->capture_checkpoints(at, kBudget);
  ASSERT_EQ(ladder.size(), at.size());

  for (Checkpoint& rung : ladder) {
    ASSERT_GE(rung.cycle, start);
    ASSERT_LT(rung.cycle, start + length);
    CheckpointMemo memo;
    machine->restore_checkpoint(rung, memo);
    ASSERT_EQ(machine->cpu().cycles(), rung.cycle);
    // Same absolute watchdog deadline as the straight-line run, so the
    // continuation is the identical execution.
    const RunResult resumed = machine->run(kBudget - (rung.cycle - start));
    EXPECT_EQ(resumed.exit, RunExit::Completed);
    EXPECT_EQ(machine->state_digest(), end_digest)
        << "rung at cycle " << rung.cycle;
  }
}

TEST(Checkpoint, RungToNextRungMatchesStraightLine) {
  auto machine = make_machine("syscall");
  ASSERT_TRUE(machine->boot()) << machine->console_output();
  const std::uint64_t start = machine->snapshot_cycles();

  machine->restore();
  const RunResult straight = machine->run(kBudget);
  ASSERT_EQ(straight.exit, RunExit::Completed);
  const std::uint64_t length = machine->cpu().cycles() - start;

  std::vector<std::uint64_t> at;
  for (int k = 1; k <= 6; ++k) at.push_back(start + length * k / 7);
  std::vector<Checkpoint> ladder = machine->capture_checkpoints(at, kBudget);
  ASSERT_EQ(ladder.size(), at.size());

  // A second capture pass lands on the identical rungs: each rung's
  // digest-after-restore must match between the two ladders.
  std::vector<Checkpoint> again = machine->capture_checkpoints(at, kBudget);
  ASSERT_EQ(again.size(), ladder.size());
  std::vector<CheckpointMemo> ladder_memos(ladder.size());
  std::vector<CheckpointMemo> again_memos(again.size());
  for (std::size_t i = 0; i < ladder.size(); ++i) {
    EXPECT_EQ(again[i].cycle, ladder[i].cycle);
    machine->restore_checkpoint(ladder[i], ladder_memos[i]);
    const std::uint64_t from_first = machine->state_digest();
    machine->restore_checkpoint(again[i], again_memos[i]);
    EXPECT_EQ(machine->state_digest(), from_first) << "rung " << i;
  }
}

TEST(Checkpoint, DirtyAndFullRestoreDigestIdentically) {
  auto dirty = make_machine("fstime");
  MachineOptions full_options;
  full_options.full_restore = true;
  auto full = make_machine("fstime", full_options);
  ASSERT_TRUE(dirty->boot());
  ASSERT_TRUE(full->boot());

  for (const std::uint64_t budget :
       {std::uint64_t{50'000}, std::uint64_t{400'000}, kBudget}) {
    dirty->restore();
    full->restore();
    EXPECT_EQ(dirty->state_digest(), full->state_digest());
    dirty->run(budget);
    full->run(budget);
    EXPECT_EQ(dirty->state_digest(), full->state_digest())
        << "budget " << budget;
  }
}

TEST(Checkpoint, LadderDoesNotChangeCampaignResults) {
  const auto& prof = profile::default_profile();
  const inject::CampaignConfig config =
      check::smoke_config(inject::Campaign::RandomNonBranch);

  inject::InjectorOptions with_ladder;
  ASSERT_GT(with_ladder.checkpoints, 0);
  inject::Injector ladder_injector(with_ladder);
  const inject::CampaignRun ladder =
      inject::run_campaign(ladder_injector, prof, config);
  EXPECT_GT(ladder_injector.checkpoint_hits(), 0u);

  inject::InjectorOptions no_ladder;
  no_ladder.checkpoints = 0;
  no_ladder.full_restore = true;
  inject::Injector baseline_injector(no_ladder);
  const inject::CampaignRun baseline =
      inject::run_campaign(baseline_injector, prof, config);
  EXPECT_EQ(baseline_injector.checkpoint_hits(), 0u);

  const check::RunComparison comparison =
      check::compare_runs(ladder, baseline);
  EXPECT_TRUE(comparison.identical())
      << comparison.mismatches.size() << " of " << comparison.compared
      << " results differ between ladder and baseline execution";
}

}  // namespace
}  // namespace kfi::machine
