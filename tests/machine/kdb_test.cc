// KDB-analog debugger tests: disassembly windows, backtraces, task
// dumps, memory dumps, and the full oops report.
#include "machine/kdb.h"

#include <gtest/gtest.h>

#include "kernel/koffsets.h"
#include "vm/layout.h"

namespace kfi::machine {
namespace {

std::unique_ptr<Machine> booted(const char* workload) {
  static const disk::DiskImage root_disk = make_root_disk();
  auto machine = std::make_unique<Machine>(kernel::built_kernel(),
                                           workloads::built_workload(workload),
                                           root_disk);
  EXPECT_TRUE(machine->boot());
  return machine;
}

TEST(Kdb, DisassembleFunctionShowsEveryInstruction) {
  auto machine = booted("syscall");
  Kdb kdb(*machine);
  const std::string text = kdb.disassemble_function("pipe_read");
  EXPECT_NE(text.find("pipe_read:"), std::string::npos);
  EXPECT_NE(text.find("push %ebp"), std::string::npos);
  EXPECT_NE(text.find("ret"), std::string::npos);
  EXPECT_EQ(text.find("(bad)"), std::string::npos)
      << "pristine kernel code must disassemble cleanly";
}

TEST(Kdb, DisassembleUnknownFunction) {
  auto machine = booted("syscall");
  Kdb kdb(*machine);
  EXPECT_NE(Kdb(*machine).disassemble_function("nope").find("unknown"),
            std::string::npos);
}

TEST(Kdb, DisassembleUnmappedAddress) {
  auto machine = booted("syscall");
  Kdb kdb(*machine);
  const std::string text = kdb.disassemble(0x00000040, 3);
  EXPECT_NE(text.find("(unmapped)"), std::string::npos);
}

TEST(Kdb, TasksShowIdleAndInit) {
  auto machine = booted("syscall");
  Kdb kdb(*machine);
  const auto tasks = kdb.tasks();
  ASSERT_GE(tasks.size(), 2u);  // idle + init
  EXPECT_EQ(tasks[0].pid, 0u);
  EXPECT_EQ(tasks[1].pid, 1u);
  bool any_current = false;
  for (const auto& t : tasks) any_current = any_current || t.is_current;
  EXPECT_TRUE(any_current);
  EXPECT_NE(kdb.render_tasks().find("<- current"), std::string::npos);
}

TEST(Kdb, BacktraceFromKernelCrashNamesFunctions) {
  // Crash inside the kernel: corrupt do_generic_file_read so the fstime
  // read path faults, then backtrace from the handler context.
  auto machine = booted("fstime");
  const kernel::KernelImage& image = kernel::built_kernel();
  const kernel::KernelFunction* fn = image.function("do_generic_file_read");
  ASSERT_NE(fn, nullptr);

  // Stop at function entry, then corrupt an early mov into a NULL load.
  machine->cpu().arm_breakpoint(0, fn->start);
  RunResult run = machine->run(50'000'000);
  ASSERT_EQ(run.exit, RunExit::Breakpoint);
  machine->cpu().disarm_breakpoint(0);
  // Flip a bit in the function body (same mechanism as the injector).
  machine->memory().write8(vm::phys_of_virt(fn->start + 10),
                           machine->memory().read8(
                               vm::phys_of_virt(fn->start + 10)) ^ 0x40);
  run = machine->run(50'000'000);

  if (run.exit == RunExit::Crashed) {
    Kdb kdb(*machine);
    const auto frames = kdb.backtrace();
    EXPECT_FALSE(frames.empty());
    // The oops report must carry the cause, the EIP symbol and code.
    const std::string report = kdb.oops_report(run.crash);
    EXPECT_NE(report.find("EIP"), std::string::npos);
    EXPECT_NE(report.find("Call Trace:"), std::string::npos);
    EXPECT_NE(report.find("Code:"), std::string::npos);
    EXPECT_NE(report.find("Stack:"), std::string::npos);
  } else {
    // The specific bit flip did not crash on this build; still exercise
    // the report path against a synthetic record.
    CrashInfo info;
    info.cause = kernel::CRASH_NULL_POINTER;
    info.fault_addr = 0x1B;
    info.eip = fn->start + 10;
    Kdb kdb(*machine);
    const std::string report = kdb.oops_report(info);
    EXPECT_NE(report.find("NULL pointer"), std::string::npos);
  }
}

TEST(Kdb, OopsReportNamesFaultingFunction) {
  auto machine = booted("syscall");
  const kernel::KernelImage& image = kernel::built_kernel();
  CrashInfo info;
  info.cause = kernel::CRASH_PAGING_REQUEST;
  info.fault_addr = 0xFFFFFFCE;
  info.eip = image.function("schedule")->start + 4;
  Kdb kdb(*machine);
  const std::string report = kdb.oops_report(info);
  EXPECT_NE(report.find("Unable to handle kernel paging request"),
            std::string::npos);
  EXPECT_NE(report.find("ffffffce"), std::string::npos);
  EXPECT_NE(report.find("schedule+0x4"), std::string::npos);
  EXPECT_NE(report.find("[kernel]"), std::string::npos);
}

TEST(Kdb, DumpMemoryMarksUnmappedWords) {
  auto machine = booted("syscall");
  Kdb kdb(*machine);
  const std::string mapped = kdb.dump_memory(vm::kKernelBase, 8);
  EXPECT_EQ(mapped.find("????????"), std::string::npos);
  const std::string unmapped = kdb.dump_memory(0x00000100, 4);
  EXPECT_NE(unmapped.find("????????"), std::string::npos);
}

TEST(Kdb, CrashCodeNames) {
  EXPECT_EQ(crash_code_name(kernel::CRASH_NULL_POINTER),
            "Unable to handle kernel NULL pointer dereference");
  EXPECT_EQ(crash_code_name(kernel::CRASH_INVALID_OPCODE), "invalid opcode");
  EXPECT_EQ(crash_code_name(12345), "unknown");
}

}  // namespace
}  // namespace kfi::machine
