// Machine-level cross-engine identity: whole golden runs, checkpoint
// ladders, and a smoke injection campaign executed under
// ExecEngine::Step, ExecEngine::Block, ExecEngine::Chained,
// ExecEngine::Threaded, and ExecEngine::Memfast must produce
// bit-identical run-visible state — state_digest(), console, cycle
// counts, exits — plus identical TLB-fill histories (the chained
// engine's inline translate cache and the memfast data-side D-TLB may
// only skip provable TLB hits) and bit-exact timer delivery under
// adversarial tick periods.  Threaded additionally elides provably
// dead flag writes, and memfast widens traces past conditional edges
// and short-circuits data translates, so these comparisons are also
// the machine-level proof that neither optimization is observable.
#include "machine/machine.h"

#include <gtest/gtest.h>

#include <cstdlib>

#include "check/expectations.h"
#include "check/replay.h"
#include "inject/campaign.h"
#include "profile/profile.h"

namespace kfi::machine {
namespace {

constexpr std::uint64_t kRunBudget = 30'000'000;

const char* engine_name(ExecEngine engine) {
  switch (engine) {
    case ExecEngine::Step: return "step";
    case ExecEngine::Block: return "block";
    case ExecEngine::Chained: return "chained";
    case ExecEngine::Threaded: return "threaded";
    case ExecEngine::Memfast: return "memfast";
  }
  return "?";
}

std::unique_ptr<Machine> make_machine(const std::string& workload,
                                      ExecEngine engine) {
  static const disk::DiskImage root_disk = make_root_disk();
  MachineOptions options;
  options.exec_engine = engine;
  return std::make_unique<Machine>(kernel::built_kernel(),
                                   workloads::built_workload(workload),
                                   root_disk, options);
}

TEST(ExecEngine, GoldenRunIdenticalAcrossEngines) {
  auto step_m = make_machine("syscall", ExecEngine::Step);
  ASSERT_TRUE(step_m->boot()) << step_m->console_output();
  const RunResult a = step_m->run(kRunBudget);
  ASSERT_EQ(a.exit, RunExit::Completed);
  EXPECT_EQ(step_m->perf_stats().block_ops, 0u);

  for (const ExecEngine engine :
       {ExecEngine::Block, ExecEngine::Chained, ExecEngine::Threaded,
        ExecEngine::Memfast}) {
    SCOPED_TRACE(engine_name(engine));
    auto block_m = make_machine("syscall", engine);
    ASSERT_TRUE(block_m->boot()) << block_m->console_output();
    const RunResult b = block_m->run(kRunBudget);
    ASSERT_EQ(b.exit, RunExit::Completed);
    EXPECT_EQ(a.exit_code, b.exit_code);
    EXPECT_EQ(step_m->cpu().cycles(), block_m->cpu().cycles());
    EXPECT_EQ(step_m->console_output(), block_m->console_output());
    EXPECT_EQ(step_m->state_digest(), block_m->state_digest());
    // The block machines actually used their engines.
    const PerfStats stats = block_m->perf_stats();
    EXPECT_GT(stats.block_ops, 0u);
    if (engine == ExecEngine::Block) {
      EXPECT_EQ(stats.chain_follows, 0u);
    } else {
      EXPECT_GT(stats.chain_follows, 0u);
    }
    if (engine == ExecEngine::Threaded || engine == ExecEngine::Memfast) {
      // Direct-threaded dispatch retired ops through handler pointers
      // and the liveness pass actually elided dead flag writes.
      EXPECT_GT(stats.threaded_ops, 0u);
      EXPECT_GT(stats.flag_elisions, 0u);
    } else {
      EXPECT_EQ(stats.threaded_ops, 0u);
      EXPECT_EQ(stats.flag_elisions, 0u);
    }
    if (engine == ExecEngine::Memfast) {
      // The data-side D-TLB actually served loads/stores, and trace
      // formation actually widened past conditional edges.
      EXPECT_GT(stats.dtlb_hits, 0u);
      EXPECT_GT(stats.cond_widened, 0u);
      EXPECT_GT(stats.side_exits, 0u);
    } else {
      EXPECT_EQ(stats.dtlb_hits, 0u);
      EXPECT_EQ(stats.dtlb_misses, 0u);
      EXPECT_EQ(stats.cond_widened, 0u);
      EXPECT_EQ(stats.side_exits, 0u);
    }
    // TLB-fill determinism: the MMU epoch counts every TLB mutation
    // (fills and flushes).  The chained engine's inline translate cache
    // and the block builder's non-filling Mmu::peek must leave the fill
    // history bit-identical to the stepper's.
    EXPECT_EQ(step_m->cpu().mmu().epoch(), block_m->cpu().mmu().epoch());
  }
}

TEST(ExecEngine, CheckpointLadderIdenticalAcrossEngines) {
  auto step_m = make_machine("syscall", ExecEngine::Step);
  ASSERT_TRUE(step_m->boot());

  // Place rungs inside the actual golden run length (capture replays
  // from the post-boot snapshot, so this probe run costs nothing).
  const std::uint64_t base = step_m->snapshot_cycles();
  ASSERT_EQ(step_m->run(kRunBudget).exit, RunExit::Completed);
  const std::uint64_t total = step_m->cpu().cycles() - base;
  ASSERT_GT(total, 100u);
  const std::vector<std::uint64_t> rungs = {
      base + total / 8, base + total / 3, base + (2 * total) / 3};
  auto cks_a = step_m->capture_checkpoints(rungs, kRunBudget);

  for (const ExecEngine engine :
       {ExecEngine::Block, ExecEngine::Chained, ExecEngine::Threaded,
        ExecEngine::Memfast}) {
    SCOPED_TRACE(engine_name(engine));
    auto block_m = make_machine("syscall", engine);
    ASSERT_TRUE(block_m->boot());
    // With chaining on, every rung cycle falls mid-chain somewhere in
    // the hot loop: the dispatch must still stop on the exact cycle.
    auto cks_b = block_m->capture_checkpoints(rungs, kRunBudget);
    ASSERT_EQ(cks_a.size(), cks_b.size());
    for (std::size_t i = 0; i < cks_a.size(); ++i) {
      // Rungs land on the identical loop-top cycle, with identical
      // register file and deltas, regardless of engine.
      EXPECT_EQ(cks_a[i].cycle, cks_b[i].cycle) << "rung " << i;
      EXPECT_EQ(cks_a[i].eip, cks_b[i].eip) << "rung " << i;
      EXPECT_EQ(cks_a[i].flags, cks_b[i].flags) << "rung " << i;
      EXPECT_EQ(cks_a[i].timer_pending, cks_b[i].timer_pending)
          << "rung " << i;
      for (int r = 0; r < 8; ++r) {
        EXPECT_EQ(cks_a[i].regs[r], cks_b[i].regs[r]) << "rung " << i;
      }
    }

    // Resuming the step machine from a rung the block machine captured
    // (and vice versa) continues on the same timeline — the mid-chain
    // rung restore severs any stale chains via the page-version bumps.
    ASSERT_GE(cks_a.size(), 2u);
    CheckpointMemo memo_a;
    CheckpointMemo memo_b;
    step_m->restore_checkpoint(cks_a[1], memo_a);
    block_m->restore_checkpoint(cks_b[1], memo_b);
    const RunResult ra = step_m->run(kRunBudget);
    const RunResult rb = block_m->run(kRunBudget);
    EXPECT_EQ(ra.exit, rb.exit);
    EXPECT_EQ(step_m->state_digest(), block_m->state_digest());
  }
}

TEST(ExecEngine, SmokeCampaignIdenticalAcrossEngines) {
  inject::InjectorOptions step_options;
  step_options.exec_engine = ExecEngine::Step;
  inject::Injector step_inj(step_options);
  const inject::CampaignRun a = inject::run_campaign(
      step_inj, profile::default_profile(),
      check::smoke_config(inject::Campaign::RandomNonBranch));

  for (const ExecEngine engine :
       {ExecEngine::Block, ExecEngine::Chained, ExecEngine::Threaded,
        ExecEngine::Memfast}) {
    SCOPED_TRACE(engine_name(engine));
    inject::InjectorOptions block_options;
    block_options.exec_engine = engine;
    inject::Injector block_inj(block_options);
    const inject::CampaignRun b = inject::run_campaign(
        block_inj, profile::default_profile(),
        check::smoke_config(inject::Campaign::RandomNonBranch));

    const check::RunComparison cmp = check::compare_runs(a, b);
    EXPECT_TRUE(cmp.identical())
        << cmp.mismatches.size() << " mismatches of " << cmp.compared;
    std::size_t shown = 0;
    for (const auto& [index, diffs] : cmp.mismatches) {
      for (const check::FieldDiff& d : diffs) {
        ADD_FAILURE() << "result " << index << " field " << d.field
                      << ": step=" << d.recorded << " block=" << d.replayed;
      }
      if (++shown == 3) break;
    }
    EXPECT_GT(block_inj.perf_stats().block_ops, 0u);
    if (engine != ExecEngine::Block) {
      EXPECT_GT(block_inj.perf_stats().chain_follows, 0u);
    }
    if (engine == ExecEngine::Threaded || engine == ExecEngine::Memfast) {
      EXPECT_GT(block_inj.perf_stats().threaded_ops, 0u);
    }
    if (engine == ExecEngine::Memfast) {
      EXPECT_GT(block_inj.perf_stats().dtlb_hits, 0u);
      EXPECT_GT(block_inj.perf_stats().cond_widened, 0u);
    } else {
      EXPECT_EQ(block_inj.perf_stats().dtlb_hits, 0u);
    }
  }
}

// Timer ticks must be delivered on bit-identical cycles even when a
// tick boundary lands exactly on a chain-follow edge.  Odd, mutually
// prime periods sweep the tick phase across every block/chain boundary
// in the golden run; the digest comparison catches any drift.
TEST(ExecEngine, TimerPeriodSweepChainedMatchesStep) {
  static const disk::DiskImage root_disk = make_root_disk();
  for (const std::uint32_t period : {977u, 1361u}) {
    SCOPED_TRACE(period);
    std::uint64_t digests[4];
    std::uint64_t cycles[4];
    int i = 0;
    for (const ExecEngine engine :
         {ExecEngine::Step, ExecEngine::Chained, ExecEngine::Threaded,
          ExecEngine::Memfast}) {
      MachineOptions options;
      options.exec_engine = engine;
      options.timer_period = period;
      Machine m(kernel::built_kernel(), workloads::built_workload("pipe"),
                root_disk, options);
      ASSERT_TRUE(m.boot()) << m.console_output();
      ASSERT_EQ(m.run(kRunBudget).exit, RunExit::Completed);
      digests[i] = m.state_digest();
      cycles[i] = m.cpu().cycles();
      if (engine != ExecEngine::Step) {
        EXPECT_GT(m.perf_stats().chain_follows, 0u);
      }
      ++i;
    }
    for (int j = 1; j < 4; ++j) {
      EXPECT_EQ(digests[0], digests[j])
          << "state diverged at period " << period << " engine " << j;
      EXPECT_EQ(cycles[0], cycles[j])
          << "cycles diverged at period " << period << " engine " << j;
    }
  }
}

TEST(ExecEngine, DefaultsFromEnvironment) {
  // The KFI_EXEC matrix legs in CI rely on this default.
  const ExecEngine def = default_exec_engine();
  const char* env = std::getenv("KFI_EXEC");
  if (env != nullptr && std::string_view(env) == "block") {
    EXPECT_EQ(def, ExecEngine::Block);
  } else if (env != nullptr && std::string_view(env) == "chained") {
    EXPECT_EQ(def, ExecEngine::Chained);
  } else if (env != nullptr && std::string_view(env) == "threaded") {
    EXPECT_EQ(def, ExecEngine::Threaded);
  } else if (env != nullptr && std::string_view(env) == "memfast") {
    EXPECT_EQ(def, ExecEngine::Memfast);
  } else {
    EXPECT_EQ(def, ExecEngine::Step);
  }
  EXPECT_EQ(MachineOptions{}.exec_engine, def);
}

}  // namespace
}  // namespace kfi::machine
