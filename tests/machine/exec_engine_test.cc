// Machine-level cross-engine identity: whole golden runs, checkpoint
// ladders, and a smoke injection campaign executed under both
// ExecEngine::Step and ExecEngine::Block must produce bit-identical
// run-visible state — state_digest(), console, cycle counts, exits.
#include "machine/machine.h"

#include <gtest/gtest.h>

#include <cstdlib>

#include "check/expectations.h"
#include "check/replay.h"
#include "inject/campaign.h"
#include "profile/profile.h"

namespace kfi::machine {
namespace {

constexpr std::uint64_t kRunBudget = 30'000'000;

std::unique_ptr<Machine> make_machine(const std::string& workload,
                                      ExecEngine engine) {
  static const disk::DiskImage root_disk = make_root_disk();
  MachineOptions options;
  options.exec_engine = engine;
  return std::make_unique<Machine>(kernel::built_kernel(),
                                   workloads::built_workload(workload),
                                   root_disk, options);
}

TEST(ExecEngine, GoldenRunIdenticalAcrossEngines) {
  auto step_m = make_machine("syscall", ExecEngine::Step);
  auto block_m = make_machine("syscall", ExecEngine::Block);
  ASSERT_TRUE(step_m->boot()) << step_m->console_output();
  ASSERT_TRUE(block_m->boot()) << block_m->console_output();

  const RunResult a = step_m->run(kRunBudget);
  const RunResult b = block_m->run(kRunBudget);
  ASSERT_EQ(a.exit, RunExit::Completed);
  ASSERT_EQ(b.exit, RunExit::Completed);
  EXPECT_EQ(a.exit_code, b.exit_code);
  EXPECT_EQ(step_m->cpu().cycles(), block_m->cpu().cycles());
  EXPECT_EQ(step_m->console_output(), block_m->console_output());
  EXPECT_EQ(step_m->state_digest(), block_m->state_digest());
  // The block machine actually used the block engine.
  EXPECT_GT(block_m->perf_stats().block_ops, 0u);
  EXPECT_EQ(step_m->perf_stats().block_ops, 0u);
}

TEST(ExecEngine, CheckpointLadderIdenticalAcrossEngines) {
  auto step_m = make_machine("syscall", ExecEngine::Step);
  auto block_m = make_machine("syscall", ExecEngine::Block);
  ASSERT_TRUE(step_m->boot());
  ASSERT_TRUE(block_m->boot());

  // Place rungs inside the actual golden run length (capture replays
  // from the post-boot snapshot, so this probe run costs nothing).
  const std::uint64_t base = step_m->snapshot_cycles();
  ASSERT_EQ(step_m->run(kRunBudget).exit, RunExit::Completed);
  const std::uint64_t total = step_m->cpu().cycles() - base;
  ASSERT_GT(total, 100u);
  const std::vector<std::uint64_t> rungs = {
      base + total / 8, base + total / 3, base + (2 * total) / 3};
  auto cks_a = step_m->capture_checkpoints(rungs, kRunBudget);
  auto cks_b = block_m->capture_checkpoints(rungs, kRunBudget);
  ASSERT_EQ(cks_a.size(), cks_b.size());
  for (std::size_t i = 0; i < cks_a.size(); ++i) {
    // Rungs land on the identical loop-top cycle, with identical
    // register file and deltas, regardless of engine.
    EXPECT_EQ(cks_a[i].cycle, cks_b[i].cycle) << "rung " << i;
    EXPECT_EQ(cks_a[i].eip, cks_b[i].eip) << "rung " << i;
    EXPECT_EQ(cks_a[i].flags, cks_b[i].flags) << "rung " << i;
    EXPECT_EQ(cks_a[i].timer_pending, cks_b[i].timer_pending) << "rung " << i;
    for (int r = 0; r < 8; ++r) {
      EXPECT_EQ(cks_a[i].regs[r], cks_b[i].regs[r]) << "rung " << i;
    }
  }

  // Resuming the step machine from a block-captured rung (and vice
  // versa would hold too) continues on the same timeline.
  ASSERT_GE(cks_a.size(), 2u);
  CheckpointMemo memo_a;
  CheckpointMemo memo_b;
  step_m->restore_checkpoint(cks_a[1], memo_a);
  block_m->restore_checkpoint(cks_b[1], memo_b);
  const RunResult ra = step_m->run(kRunBudget);
  const RunResult rb = block_m->run(kRunBudget);
  EXPECT_EQ(ra.exit, rb.exit);
  EXPECT_EQ(step_m->state_digest(), block_m->state_digest());
}

TEST(ExecEngine, SmokeCampaignIdenticalAcrossEngines) {
  inject::InjectorOptions step_options;
  step_options.exec_engine = ExecEngine::Step;
  inject::InjectorOptions block_options;
  block_options.exec_engine = ExecEngine::Block;
  inject::Injector step_inj(step_options);
  inject::Injector block_inj(block_options);

  const inject::CampaignRun a = inject::run_campaign(
      step_inj, profile::default_profile(),
      check::smoke_config(inject::Campaign::RandomNonBranch));
  const inject::CampaignRun b = inject::run_campaign(
      block_inj, profile::default_profile(),
      check::smoke_config(inject::Campaign::RandomNonBranch));

  const check::RunComparison cmp = check::compare_runs(a, b);
  EXPECT_TRUE(cmp.identical())
      << cmp.mismatches.size() << " mismatches of " << cmp.compared;
  std::size_t shown = 0;
  for (const auto& [index, diffs] : cmp.mismatches) {
    for (const check::FieldDiff& d : diffs) {
      ADD_FAILURE() << "result " << index << " field " << d.field << ": step="
                    << d.recorded << " block=" << d.replayed;
    }
    if (++shown == 3) break;
  }
  EXPECT_GT(block_inj.perf_stats().block_ops, 0u);
}

TEST(ExecEngine, DefaultsFromEnvironment) {
  // The KFI_EXEC matrix leg in CI relies on this default.
  const ExecEngine def = default_exec_engine();
  const char* env = std::getenv("KFI_EXEC");
  if (env != nullptr && std::string_view(env) == "block") {
    EXPECT_EQ(def, ExecEngine::Block);
  } else {
    EXPECT_EQ(def, ExecEngine::Step);
  }
  EXPECT_EQ(MachineOptions{}.exec_engine, def);
}

}  // namespace
}  // namespace kfi::machine
