// net/ subsystem semantics: the loopback datagram stack the paper left
// for separate study.
#include <gtest/gtest.h>

#include "machine/machine.h"

namespace kfi::machine {
namespace {

struct UserRun {
  RunExit exit = RunExit::Hung;
  std::uint32_t exit_code = 0;
  std::string console;
};

UserRun run_user(const std::string& body,
                 std::uint64_t budget = 30'000'000) {
  static const disk::DiskImage root_disk = make_root_disk();
  workloads::Workload workload;
  workload.name = "nettest";
  workload.source = body;
  workloads::WorkloadBuildResult built = workloads::build_workload(workload);
  EXPECT_TRUE(built.ok) << (built.errors.empty() ? "?" : built.errors[0]);
  Machine machine(kernel::built_kernel(), built.image, root_disk);
  EXPECT_TRUE(machine.boot());
  const RunResult result = machine.run(budget);
  return {result.exit, result.exit_code, machine.console_output()};
}

std::uint32_t user_code(const UserRun& run) { return run.exit_code >> 8; }

// Shared socket helpers for the test programs.
const char* kSockLib = R"MC(
array args[4];
func sock() { return syscall3(SYS_SOCKETCALL, 1, args, 0); }
func bindp(fd, port) {
  mem[args] = fd; mem[args + 4] = port;
  return syscall3(SYS_SOCKETCALL, 2, args, 0);
}
func sendto(fd, buf, n, port) {
  mem[args] = fd; mem[args + 4] = buf;
  mem[args + 8] = n; mem[args + 12] = port;
  return syscall3(SYS_SOCKETCALL, 11, args, 0);
}
func recvfrom(fd, buf, n) {
  mem[args] = fd; mem[args + 4] = buf; mem[args + 8] = n;
  return syscall3(SYS_SOCKETCALL, 12, args, 0);
}
)MC";

TEST(Net, DatagramRoundTripPreservesPayload) {
  const UserRun run = run_user(std::string(kSockLib) + R"(
    array msg[16];
    func main() {
      var a = sock();
      var b = sock();
      if (bindp(b, 7777) != 0) { return 1; }
      var i = 0;
      while (i < 32) { memb[msg + i] = 100 + i; i = i + 1; }
      if (sendto(a, msg, 32, 7777) != 0) { return 2; }
      i = 0;
      while (i < 32) { memb[msg + i] = 0; i = i + 1; }
      if (recvfrom(b, msg, 64) != 32) { return 3; }
      if (memb[msg] != 100 || memb[msg + 31] != 131) { return 4; }
      return 0;
    }
  )");
  EXPECT_EQ(user_code(run), 0u);
}

TEST(Net, SendToUnboundPortIsEnoent) {
  const UserRun run = run_user(std::string(kSockLib) + R"(
    array msg[4];
    func main() {
      var a = sock();
      if (sendto(a, msg, 4, 9999) == 0 - ENOENT) { return 7; }
      return 1;
    }
  )");
  EXPECT_EQ(user_code(run), 7u);
}

TEST(Net, DoubleBindIsEexist) {
  const UserRun run = run_user(std::string(kSockLib) + R"(
    func main() {
      var a = sock();
      var b = sock();
      if (bindp(a, 80) != 0) { return 1; }
      if (bindp(b, 80) != 0 - EEXIST) { return 2; }
      return 0;
    }
  )");
  EXPECT_EQ(user_code(run), 0u);
}

TEST(Net, BindPortZeroIsEinval) {
  const UserRun run = run_user(std::string(kSockLib) + R"(
    func main() {
      var a = sock();
      if (bindp(a, 0) == 0 - EINVAL) { return 7; }
      return 1;
    }
  )");
  EXPECT_EQ(user_code(run), 7u);
}

TEST(Net, SocketcallOnRegularFdIsEbadf) {
  const UserRun run = run_user(std::string(kSockLib) + R"(
    func main() {
      mem[args] = 1;   // stdout, not a socket
      mem[args + 4] = 80;
      if (syscall3(SYS_SOCKETCALL, 2, args, 0) == 0 - EBADF) { return 7; }
      return 1;
    }
  )");
  EXPECT_EQ(user_code(run), 7u);
}

TEST(Net, UnknownSocketcallIsEinval) {
  const UserRun run = run_user(std::string(kSockLib) + R"(
    func main() {
      var a = sock();
      mem[args] = a;
      if (syscall3(SYS_SOCKETCALL, 42, args, 0) == 0 - EINVAL) { return 7; }
      return 1;
    }
  )");
  EXPECT_EQ(user_code(run), 7u);
}

TEST(Net, RecvBlocksUntilChildSends) {
  const UserRun run = run_user(std::string(kSockLib) + R"(
    array msg[8];
    func main() {
      var r = sock();
      if (bindp(r, 53) != 0) { return 1; }
      var pid = fork();
      if (pid == 0) {
        // Child gives the parent time to block, then sends.
        var spin = 0;
        while (spin < 30000) { spin = spin + 1; }
        memb[msg] = 42;
        sendto(sock(), msg, 1, 53);
        exit(0);
      }
      if (recvfrom(r, msg, 8) != 1) { return 2; }
      if (memb[msg] != 42) { return 3; }
      waitpid(pid, 0, 0);
      return 0;
    }
  )");
  EXPECT_EQ(user_code(run), 0u);
}

TEST(Net, ManyDatagramsQueueInOrder) {
  const UserRun run = run_user(std::string(kSockLib) + R"(
    array msg[4];
    func main() {
      var a = sock();
      var b = sock();
      bindp(b, 10);
      var i = 0;
      while (i < 20) {
        memb[msg] = i;
        if (sendto(a, msg, 1, 10) != 0) { return 1; }
        i = i + 1;
      }
      i = 0;
      while (i < 20) {
        if (recvfrom(b, msg, 4) != 1) { return 2; }
        if (memb[msg] != i) { return 3; }
        i = i + 1;
      }
      return 0;
    }
  )");
  EXPECT_EQ(user_code(run), 0u);
}

TEST(Net, RingOverflowDropsWithEagain) {
  const UserRun run = run_user(std::string(kSockLib) + R"(
    array msg[260];
    func main() {
      var a = sock();
      var b = sock();
      bindp(b, 10);
      // 1 KiB payloads + 4-byte headers: the 5th cannot fit in 4 KiB.
      var sent = 0;
      var i = 0;
      while (i < 6) {
        var r = sendto(a, msg, 1000, 10);
        if (r == 0) { sent = sent + 1; }
        else { if (r != 0 - EAGAIN) { return 1; } }
        i = i + 1;
      }
      if (sent >= 6) { return 2; }   // overflow must have dropped some
      if (sent < 3) { return 3; }
      return 0;
    }
  )");
  EXPECT_EQ(user_code(run), 0u);
}

TEST(Net, NetFunctionsAreInNetSubsystem) {
  const kernel::KernelImage& image = kernel::built_kernel();
  for (const char* name : {"sys_socketcall", "udp_sendmsg", "udp_recvmsg",
                           "netif_rx", "ip_loopback_xmit", "net_checksum",
                           "udp_v4_lookup"}) {
    const kernel::KernelFunction* fn = image.function(name);
    ASSERT_NE(fn, nullptr) << name;
    EXPECT_EQ(fn->subsystem, kernel::Subsystem::Net) << name;
  }
}

}  // namespace
}  // namespace kfi::machine
