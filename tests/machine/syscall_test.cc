// Kernel system-call and fault-handling semantics, tested with small
// purpose-built user programs compiled on the fly.
#include <gtest/gtest.h>

#include "machine/machine.h"
#include "workloads/libc.h"

namespace kfi::machine {
namespace {

struct UserRun {
  RunExit exit = RunExit::Hung;
  std::uint32_t exit_code = 0;  // raw (sys_exit shifts user code << 8)
  std::string console;
};

// Compiles `body` (MiniC with the user libc available) and runs it.
UserRun run_user(const std::string& body,
                 std::uint64_t budget = 30'000'000) {
  static const disk::DiskImage root_disk = make_root_disk();
  workloads::Workload workload;
  workload.name = "testprog";
  workload.source = body;
  workloads::WorkloadBuildResult built = workloads::build_workload(workload);
  EXPECT_TRUE(built.ok) << (built.errors.empty() ? "?" : built.errors[0]);

  Machine machine(kernel::built_kernel(), built.image, root_disk);
  EXPECT_TRUE(machine.boot());
  const RunResult result = machine.run(budget);
  UserRun run;
  run.exit = result.exit;
  run.exit_code = result.exit_code;
  run.console = machine.console_output();
  return run;
}

// User exit codes come back shifted by 8 (Linux wait status encoding).
std::uint32_t user_code(const UserRun& run) { return run.exit_code >> 8; }

TEST(Syscalls, ExitCodePropagates) {
  const UserRun run = run_user("func main() { return 42; }");
  EXPECT_EQ(run.exit, RunExit::Completed);
  EXPECT_EQ(user_code(run), 42u);
}

TEST(Syscalls, WriteToConsole) {
  const UserRun run = run_user(R"(
    func main() { print("hello from user space\n"); return 0; }
  )");
  EXPECT_EQ(run.exit, RunExit::Completed);
  EXPECT_NE(run.console.find("hello from user space"), std::string::npos);
}

TEST(Syscalls, GetpidIsInitPid) {
  const UserRun run = run_user("func main() { return getpid(); }");
  EXPECT_EQ(user_code(run), 1u);
}

TEST(Syscalls, UnknownSyscallReturnsEnosys) {
  const UserRun run = run_user(R"(
    func main() {
      var r = syscall3(99, 0, 0, 0);
      if (r == -38) { return 7; }   // -ENOSYS
      return 1;
    }
  )");
  EXPECT_EQ(user_code(run), 7u);
}

TEST(Syscalls, OutOfRangeSyscallNumberReturnsEnosys) {
  const UserRun run = run_user(R"(
    func main() {
      if (syscall3(5000, 0, 0, 0) == -38) { return 7; }
      return 1;
    }
  )");
  EXPECT_EQ(user_code(run), 7u);
}

TEST(Syscalls, OpenMissingFileIsEnoent) {
  const UserRun run = run_user(R"(
    func main() {
      if (open("/does/not/exist", O_RDONLY) == 0 - ENOENT) { return 7; }
      return 1;
    }
  )");
  EXPECT_EQ(user_code(run), 7u);
}

TEST(Syscalls, ReadEtcPasswdContents) {
  const UserRun run = run_user(R"(
    array buf[64];
    func main() {
      var fd = open("/etc/passwd", O_RDONLY);
      if (fd < 0) { return 1; }
      var n = read(fd, buf, 200);
      if (n <= 0) { return 2; }
      write(1, buf, n);
      close(fd);
      return 0;
    }
  )");
  EXPECT_EQ(user_code(run), 0u);
  EXPECT_NE(run.console.find("root:x:0:0"), std::string::npos);
}

TEST(Syscalls, ReadPastEofReturnsZero) {
  const UserRun run = run_user(R"(
    array buf[64];
    func main() {
      var fd = open("/etc/passwd", O_RDONLY);
      lseek(fd, 100000, 0);
      if (read(fd, buf, 16) == 0) { return 7; }
      return 1;
    }
  )");
  EXPECT_EQ(user_code(run), 7u);
}

TEST(Syscalls, CreatWriteReadBackUnlink) {
  const UserRun run = run_user(R"(
    array buf[64];
    func main() {
      var fd = creat("/tmp/t.dat");
      if (fd < 0) { return 1; }
      memb[buf] = 65; memb[buf + 1] = 66; memb[buf + 2] = 67;
      if (write(fd, buf, 3) != 3) { return 2; }
      close(fd);
      fd = open("/tmp/t.dat", O_RDONLY);
      if (fd < 0) { return 3; }
      memb[buf] = 0; memb[buf + 1] = 0; memb[buf + 2] = 0;
      if (read(fd, buf, 16) != 3) { return 4; }
      close(fd);
      if (memb[buf] != 65 || memb[buf + 2] != 67) { return 5; }
      if (unlink("/tmp/t.dat") != 0) { return 6; }
      if (open("/tmp/t.dat", O_RDONLY) >= 0) { return 7; }
      return 0;
    }
  )");
  EXPECT_EQ(user_code(run), 0u);
}

TEST(Syscalls, LseekSetCurEnd) {
  const UserRun run = run_user(R"(
    array buf[64];
    func main() {
      var fd = creat("/tmp/seek.dat");
      var i = 0;
      while (i < 10) { memb[buf + i] = 48 + i; i = i + 1; }
      write(fd, buf, 10);
      if (lseek(fd, 2, 0) != 2) { return 1; }      // SEEK_SET
      if (lseek(fd, 3, 1) != 5) { return 2; }      // SEEK_CUR
      if (lseek(fd, 0, 2) != 10) { return 3; }     // SEEK_END
      lseek(fd, 4, 0);
      close(fd);
      fd = open("/tmp/seek.dat", O_RDONLY);
      lseek(fd, 4, 0);
      read(fd, buf + 32, 1);
      if (memb[buf + 32] != 52) { return 4; }      // '4'
      return 0;
    }
  )");
  EXPECT_EQ(user_code(run), 0u);
}

TEST(Syscalls, DupSharesFilePosition) {
  const UserRun run = run_user(R"(
    array buf[16];
    func main() {
      var fd = open("/data/seed.dat", O_RDONLY);
      var fd2 = dup(fd);
      if (fd2 < 0) { return 1; }
      read(fd, buf, 4);
      if (lseek(fd2, 0, 1) != 4) { return 2; }   // shared f_pos
      close(fd);
      read(fd2, buf, 4);                          // still open via fd2
      if (lseek(fd2, 0, 1) != 8) { return 3; }
      return 0;
    }
  )");
  EXPECT_EQ(user_code(run), 0u);
}

TEST(Syscalls, BadFdIsEbadf) {
  const UserRun run = run_user(R"(
    array buf[4];
    func main() {
      if (read(6, buf, 4) != 0 - EBADF) { return 1; }
      if (write(200, buf, 4) != 0 - EBADF) { return 2; }
      if (close(7) != 0 - EBADF) { return 3; }
      return 0;
    }
  )");
  EXPECT_EQ(user_code(run), 0u);
}

TEST(Syscalls, ForkReturnsChildPidAndZero) {
  const UserRun run = run_user(R"(
    func main() {
      var pid = fork();
      if (pid == 0) {
        exit(9);
      }
      if (pid < 2) { return 1; }   // child pids start at 2
      var status = 0;
      if (waitpid(pid, &box, 0) != pid) { return 2; }
      return box >> 8;             // child's exit code
    }
    global box = 0;
  )");
  EXPECT_EQ(user_code(run), 9u);
}

TEST(Syscalls, WaitWithNoChildrenIsEchild) {
  const UserRun run = run_user(R"(
    func main() {
      if (waitpid(-1, 0, 0) == -10) { return 7; }   // -ECHILD
      return 1;
    }
  )");
  EXPECT_EQ(user_code(run), 7u);
}

TEST(Syscalls, PipeEofAfterWriterExits) {
  const UserRun run = run_user(R"(
    array fds[2];
    array buf[4];
    func main() {
      pipe(fds);
      var pid = fork();
      if (pid == 0) {
        memb[buf] = 88;
        write(mem[fds + 4], buf, 1);
        exit(0);   // closes the child's write end
      }
      waitpid(pid, 0, 0);
      if (read(mem[fds], buf, 1) != 1) { return 1; }
      if (memb[buf] != 88) { return 2; }
      // Parent still holds a write fd, so the pipe is not at EOF; close
      // it first, then EOF must be observed.
      close(mem[fds + 4]);
      if (read(mem[fds], buf, 1) != 0) { return 3; }
      return 0;
    }
  )");
  EXPECT_EQ(user_code(run), 0u);
}

TEST(Syscalls, WrongPipeDirectionIsEbadf) {
  // As on Linux: writing the read end (or reading the write end) of a
  // pipe fails with EBADF at the VFS layer.
  const UserRun run = run_user(R"(
    array fds[2];
    array buf[4];
    func main() {
      pipe(fds);
      if (write(mem[fds], buf, 4) != 0 - EBADF) { return 1; }
      if (read(mem[fds + 4], buf, 4) != 0 - EBADF) { return 2; }
      return 0;
    }
  )");
  EXPECT_EQ(user_code(run), 0u);
}

TEST(Syscalls, BrkGrowsHeapDemandZero) {
  const UserRun run = run_user(R"(
    func main() {
      var base = brk(0);
      if (brk(base + 0x3000) < 0) { return 1; }
      if (mem[base + 0x2ffc] != 0) { return 2; }   // demand-zero
      mem[base + 0x2000] = 1234;
      if (mem[base + 0x2000] != 1234) { return 3; }
      return 0;
    }
  )");
  EXPECT_EQ(user_code(run), 0u);
}

TEST(Syscalls, SemaphoreOps) {
  const UserRun run = run_user(R"(
    func main() {
      semctl(4, 2, 5);                       // set sem 2 = 5
      if (semctl(3, 2, 0) != 5) { return 1; }
      if (semctl(2, 2, 3) != 2) { return 2; }  // down by 3
      if (semctl(2, 2, 9) != 0 - EAGAIN) { return 3; }
      if (semctl(1, 2, 1) != 3) { return 4; }  // up by 1
      if (semctl(4, 99, 0) != 0 - EINVAL) { return 5; }
      return 0;
    }
  )");
  EXPECT_EQ(user_code(run), 0u);
}

// ---- fault handling for misbehaving user code ----

TEST(UserFaults, NullDereferenceKillsProcess) {
  const UserRun run = run_user("func main() { return mem[0]; }");
  EXPECT_EQ(run.exit, RunExit::Completed);  // init killed -> shutdown
  EXPECT_EQ(run.exit_code, 128u + 11u);     // SIGSEGV-style code
}

TEST(UserFaults, KernelMemoryAccessKillsProcess) {
  const UserRun run = run_user("func main() { return mem[0xC0105000]; }");
  EXPECT_EQ(run.exit_code, 128u + 11u);
}

TEST(UserFaults, DivideByZeroKillsProcess) {
  const UserRun run = run_user(R"(
    global zero = 0;
    func main() { return 5 / zero; }
  )");
  EXPECT_EQ(run.exit_code, 128u + 5u);  // divide-error cause code
}

TEST(UserFaults, PrivilegedInstructionKillsProcess) {
  const UserRun run = run_user(R"(
    func main() { asm("hlt"); return 0; }
  )");
  EXPECT_EQ(run.exit_code, 128u + 4u);  // #GP cause code
}

TEST(UserFaults, WildJumpKillsProcess) {
  const UserRun run = run_user(R"(
    func main() {
      asm("mov $0x12345678, %eax");
      asm("jmp *%eax");
      return 0;
    }
  )");
  EXPECT_EQ(run.exit_code, 128u + 11u);
}

TEST(UserFaults, StackGrowsOnDemand) {
  // Deep recursion crosses many unmapped stack pages.
  const UserRun run = run_user(R"(
    func deep(n) {
      var pad0 = n; var pad1 = n; var pad2 = n; var pad3 = n;
      var pad4 = n; var pad5 = n; var pad6 = n; var pad7 = n;
      if (n == 0) { return 0; }
      deep(n - 1);
      return pad7;
    }
    func main() { deep(2000); return 0; }
  )");
  EXPECT_EQ(user_code(run), 0u);
}

TEST(UserFaults, ChildCrashDoesNotKillParent) {
  const UserRun run = run_user(R"(
    func main() {
      var pid = fork();
      if (pid == 0) {
        mem[0] = 1;   // child segfaults
        exit(0);
      }
      if (waitpid(pid, &box, 0) != pid) { return 1; }
      if (box != 128 + 11) { return 2; }  // killed, not clean exit
      return 0;
    }
    global box = 0;
  )");
  EXPECT_EQ(user_code(run), 0u);
}

TEST(UserFaults, ForkBombHitsTaskLimit) {
  // Only NTASKS slots exist; forks beyond that fail with -EAGAIN
  // rather than wedging the kernel.
  const UserRun run = run_user(R"(
    func main() {
      var children = 0;
      var i = 0;
      while (i < 40) {
        var pid = fork();
        if (pid == 0) {
          // child: spin until reaped? no — just exit late
          exit(0);
        }
        if (pid < 0) {
          // ran out of tasks at least once: reap everything and pass
          while (waitpid(-1, 0, 0) > 0) { }
          return 7;
        }
        children = children + 1;
        i = i + 1;
      }
      while (waitpid(-1, 0, 0) > 0) { }
      return 7;   // either way the kernel survived 40 forks
    }
  )");
  EXPECT_EQ(user_code(run), 7u);
}

}  // namespace
}  // namespace kfi::machine
