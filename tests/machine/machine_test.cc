// Whole-machine tests: boot the kernel, run every workload to clean
// completion, verify console output determinism, snapshot/restore, and
// file-system effects.
#include "machine/machine.h"

#include <gtest/gtest.h>

#include "fsutil/kfs.h"

namespace kfi::machine {
namespace {

constexpr std::uint64_t kRunBudget = 30'000'000;

std::unique_ptr<Machine> make_machine(const std::string& workload) {
  static const disk::DiskImage root_disk = make_root_disk();
  auto machine = std::make_unique<Machine>(kernel::built_kernel(),
                                           workloads::built_workload(workload),
                                           root_disk);
  return machine;
}

TEST(Machine, KernelBoots) {
  auto machine = make_machine("syscall");
  ASSERT_TRUE(machine->boot())
      << "console so far:\n" << machine->console_output();
  EXPECT_NE(machine->console_output().find("kfi-linux"), std::string::npos);
}

struct WorkloadCase {
  const char* name;
  const char* expect_in_output;
};

class WorkloadRuns : public ::testing::TestWithParam<WorkloadCase> {};

TEST_P(WorkloadRuns, RunsToCleanCompletion) {
  const WorkloadCase& param = GetParam();
  auto machine = make_machine(param.name);
  ASSERT_TRUE(machine->boot()) << machine->console_output();
  const RunResult result = machine->run(kRunBudget);
  EXPECT_EQ(result.exit, RunExit::Completed)
      << "exit=" << static_cast<int>(result.exit)
      << " crash cause=" << result.crash.cause
      << " addr=" << std::hex << result.crash.fault_addr
      << " eip=" << result.crash.eip
      << "\nconsole:\n" << machine->console_output();
  EXPECT_EQ(result.exit_code, 0u) << machine->console_output();
  EXPECT_NE(machine->console_output().find(param.expect_in_output),
            std::string::npos)
      << machine->console_output();
  // The file system must be clean after a healthy run.
  EXPECT_EQ(fsutil::fsck(machine->disk_image()).verdict,
            fsutil::FsckVerdict::Clean);
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, WorkloadRuns,
    ::testing::Values(WorkloadCase{"syscall", "syscall: "},
                      WorkloadCase{"pipe", "pipe: "},
                      WorkloadCase{"context1", "context1: 40"},
                      WorkloadCase{"spawn", "spawn: "},
                      WorkloadCase{"fstime", "fstime rw: "},
                      WorkloadCase{"dhry", "dhry: "},
                      WorkloadCase{"hanoi", "hanoi: 2047"},
                      WorkloadCase{"looper", "looper: "},
                      WorkloadCase{"netio", "netio: "}),
    [](const ::testing::TestParamInfo<WorkloadCase>& info) {
      return std::string(info.param.name);
    });

TEST(Machine, OutputIsDeterministic) {
  auto a = make_machine("fstime");
  auto b = make_machine("fstime");
  ASSERT_TRUE(a->boot());
  ASSERT_TRUE(b->boot());
  a->run(kRunBudget);
  b->run(kRunBudget);
  EXPECT_EQ(a->console_output(), b->console_output());
  EXPECT_EQ(fsutil::tree_digest(a->disk_image()),
            fsutil::tree_digest(b->disk_image()));
}

TEST(Machine, RestoreReplaysIdentically) {
  auto machine = make_machine("pipe");
  ASSERT_TRUE(machine->boot());
  const RunResult first = machine->run(kRunBudget);
  ASSERT_EQ(first.exit, RunExit::Completed);
  const std::string output1 = machine->console_output();

  machine->restore();
  const RunResult second = machine->run(kRunBudget);
  EXPECT_EQ(second.exit, RunExit::Completed);
  EXPECT_EQ(machine->console_output(), output1);
}

TEST(Machine, RestoreResetsDisk) {
  auto machine = make_machine("fstime");
  ASSERT_TRUE(machine->boot());
  const std::uint64_t pristine = fsutil::tree_digest(machine->disk_image());
  machine->run(kRunBudget);
  machine->restore();
  EXPECT_EQ(fsutil::tree_digest(machine->disk_image()), pristine);
}

TEST(Machine, WatchdogCatchesBudgetExhaustion) {
  auto machine = make_machine("dhry");
  ASSERT_TRUE(machine->boot());
  const RunResult result = machine->run(1000);  // far too little
  EXPECT_EQ(result.exit, RunExit::Hung);
}

TEST(Machine, RootDiskIsWellFormed) {
  const disk::DiskImage image = make_root_disk();
  EXPECT_EQ(fsutil::fsck(image).verdict, fsutil::FsckVerdict::Clean);
  EXPECT_TRUE(fsutil::read_file(image, "/sbin/init").has_value());
  EXPECT_TRUE(fsutil::read_file(image, "/lib/libc.so").has_value());
  EXPECT_TRUE(fsutil::read_file(image, "/etc/passwd").has_value());
  EXPECT_TRUE(fsutil::read_file(image, "/data/seed.dat").has_value());
  EXPECT_NE(fsutil::lookup(image, "/tmp"), 0u);
}

}  // namespace
}  // namespace kfi::machine
