// Pins the word-at-a-time FNV-1a used by Machine::state_digest() to
// the classic byte-at-a-time definition: same polynomial, same byte
// order, same value — the speedup must not move a single digest.
#include "machine/machine.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

namespace kfi::machine {
namespace {

std::uint64_t fnv1a_naive(std::uint64_t h, const std::uint8_t* p,
                          std::size_t len) {
  for (std::size_t i = 0; i < len; ++i) {
    h = (h ^ p[i]) * 1099511628211ULL;
  }
  return h;
}

constexpr std::uint64_t kBasis = 1469598103934665603ULL;

std::vector<std::uint8_t> reference_buffer(std::size_t len) {
  std::vector<std::uint8_t> buf(len);
  for (std::size_t i = 0; i < len; ++i) {
    buf[i] = static_cast<std::uint8_t>(i * 37 + 11);
  }
  return buf;
}

TEST(StateDigest, WordMixMatchesPinnedConstant) {
  // Computed independently from the FNV-1a definition; a change here
  // means every committed replay digest would silently shift.
  const std::vector<std::uint8_t> buf = reference_buffer(1003);
  EXPECT_EQ(fnv1a_mix_bytes(kBasis, buf.data(), buf.size()),
            0x966be73eab1f7e97ULL);
}

TEST(StateDigest, WordMixMatchesByteLoopAtEveryLength) {
  // Lengths 0..40 cover all word/tail split alignments.
  const std::vector<std::uint8_t> buf = reference_buffer(40);
  for (std::size_t len = 0; len <= buf.size(); ++len) {
    EXPECT_EQ(fnv1a_mix_bytes(kBasis, buf.data(), len),
              fnv1a_naive(kBasis, buf.data(), len))
        << "len " << len;
  }
}

TEST(StateDigest, ChainsAcrossCalls) {
  // state_digest() chains RAM, disk, and console through one running
  // hash; split calls must equal one contiguous mix.
  const std::vector<std::uint8_t> buf = reference_buffer(257);
  const std::uint64_t whole = fnv1a_mix_bytes(kBasis, buf.data(), buf.size());
  std::uint64_t split = fnv1a_mix_bytes(kBasis, buf.data(), 100);
  split = fnv1a_mix_bytes(split, buf.data() + 100, buf.size() - 100);
  EXPECT_EQ(whole, split);
}

}  // namespace
}  // namespace kfi::machine
