// TraceBuffer unit tests: ring bounds, drop-oldest semantics, lifetime
// counters across clear(), JSONL export, timeline rendering, and
// concurrent recording.
#include "trace/trace.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <thread>

namespace kfi::trace {
namespace {

TEST(TraceBuffer, RecordsAndReadsBackInOrder) {
  TraceBuffer buf(8);
  buf.record(EventKind::RunBegin, 100, 1);
  buf.record(EventKind::TrapEntry, 250, 14, 2, 0xc0101000, 0x44);
  buf.record(EventKind::RunEnd, 300, 0);
  const std::vector<Event> events = buf.events();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].kind, EventKind::RunBegin);
  EXPECT_EQ(events[0].cycle, 100u);
  EXPECT_EQ(events[1].kind, EventKind::TrapEntry);
  EXPECT_EQ(events[1].a, 14u);
  EXPECT_EQ(events[1].c, 0xc0101000u);
  EXPECT_EQ(events[2].cycle, 300u);
  EXPECT_EQ(buf.total_recorded(), 3u);
  EXPECT_EQ(buf.total_dropped(), 0u);
}

TEST(TraceBuffer, DropsOldestWhenFull) {
  TraceBuffer buf(4);
  for (std::uint32_t i = 0; i < 7; ++i) {
    buf.record(EventKind::TimerIrq, i, i);
  }
  EXPECT_EQ(buf.size(), 4u);
  EXPECT_EQ(buf.total_recorded(), 7u);
  EXPECT_EQ(buf.total_dropped(), 3u);
  // Forensics keeps the END of the story: the oldest three went away.
  const std::vector<Event> events = buf.events();
  ASSERT_EQ(events.size(), 4u);
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].a, i + 3) << "oldest-first window of the tail";
  }
}

TEST(TraceBuffer, ClearKeepsLifetimeTotals) {
  TraceBuffer buf(2);
  for (std::uint32_t i = 0; i < 5; ++i) buf.record(EventKind::TimerIrq, i);
  buf.clear();
  EXPECT_EQ(buf.size(), 0u);
  EXPECT_TRUE(buf.events().empty());
  EXPECT_EQ(buf.total_recorded(), 5u);
  EXPECT_EQ(buf.total_dropped(), 3u);
  buf.record(EventKind::RunBegin, 9);
  EXPECT_EQ(buf.size(), 1u);
  EXPECT_EQ(buf.total_recorded(), 6u);
}

TEST(TraceBuffer, EventNamesAreStable) {
  EXPECT_EQ(event_name(EventKind::TrapEntry), "trap_entry");
  EXPECT_EQ(event_name(EventKind::InjectFlip), "inject_flip");
  EXPECT_EQ(event_name(EventKind::ChunkSteal), "chunk_steal");
}

TEST(TraceBuffer, JsonlSchemaAndSymbolResolution) {
  TraceBuffer buf(8);
  buf.record(EventKind::InjectTrigger, 1000, 0xc0120010);
  buf.record(EventKind::MemFault, 1010, 14, 2, 0xc0120014, 0x10);
  const SymbolResolver resolve = [](std::uint32_t addr) {
    return addr == 0xc0120014 ? std::string("pipe_read+0x4 (fs)")
                              : std::string();
  };
  const std::string jsonl = to_jsonl(buf.events(), resolve);
  EXPECT_NE(jsonl.find("\"seq\":0"), std::string::npos);
  EXPECT_NE(jsonl.find("\"event\":\"inject_trigger\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"event\":\"mem_fault\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"cycle\":1010"), std::string::npos);
  EXPECT_NE(jsonl.find("\"sym\":\"pipe_read+0x4 (fs)\""), std::string::npos);
  // One JSON object per line.
  std::size_t lines = 0;
  for (const char c : jsonl) lines += c == '\n';
  EXPECT_EQ(lines, 2u);
}

TEST(TraceBuffer, WriteJsonlChecksIoAndRemovesPartialFile) {
  TraceBuffer buf(4);
  buf.record(EventKind::RunBegin, 1);
  // Unwritable destination: must fail and leave nothing behind.
  EXPECT_FALSE(write_jsonl(buf.events(),
                           "/nonexistent-kfi-dir/trace.jsonl"));
  EXPECT_FALSE(std::filesystem::exists("/nonexistent-kfi-dir/trace.jsonl"));

  const std::string path =
      (std::filesystem::temp_directory_path() / "kfi_trace_test.jsonl")
          .string();
  EXPECT_TRUE(write_jsonl(buf.events(), path));
  std::ifstream in(path);
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_NE(line.find("\"event\":\"run_begin\""), std::string::npos);
  std::filesystem::remove(path);
}

TEST(TraceBuffer, TimelineMarksTriggerAndDeltas) {
  TraceBuffer buf(8);
  buf.record(EventKind::RunBegin, 500);
  buf.record(EventKind::InjectTrigger, 1000, 0xc0120010);
  buf.record(EventKind::InjectFlip, 1000, 0xc0120010, 0 << 8 | 7, 0x8b, 0x0b);
  buf.record(EventKind::TrapEntry, 1042, 14, 0, 0xc0120014, 0x30);
  const std::string timeline = render_timeline(buf.events());
  EXPECT_NE(timeline.find("TRIGGER"), std::string::npos);
  EXPECT_NE(timeline.find("FLIP"), std::string::npos);
  // Events after the trigger carry a +delta column.
  EXPECT_NE(timeline.find("+42"), std::string::npos);
}

TEST(TraceBuffer, ConcurrentRecordingLosesNothing) {
  TraceBuffer buf(64);
  constexpr int kThreads = 4;
  constexpr std::uint32_t kPerThread = 1000;
  std::vector<std::thread> pool;
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&buf, t] {
      for (std::uint32_t i = 0; i < kPerThread; ++i) {
        buf.record(EventKind::TimerIrq, i, static_cast<std::uint32_t>(t));
      }
    });
  }
  for (std::thread& t : pool) t.join();
  EXPECT_EQ(buf.total_recorded(), kThreads * kPerThread);
  EXPECT_EQ(buf.size(), 64u);
  EXPECT_EQ(buf.total_dropped(), kThreads * kPerThread - 64);
}

}  // namespace
}  // namespace kfi::trace
