// End-to-end forensics-trace tests against the real injection engine:
// the observational contract (identical results with tracing on/off),
// the per-injection event window for a known severe crash, and the
// trace-derived propagation attribution.
#include "trace/trace.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "analysis/aggregate.h"
#include "inject/campaign.h"
#include "inject/injector.h"
#include "inject/targets.h"
#include "profile/profile.h"

namespace kfi::inject {
namespace {

Injector& untraced_injector() {
  static Injector injector;
  return injector;
}

Injector& traced_injector() {
  static Injector* injector = [] {
    InjectorOptions options;
    options.trace_capacity = trace::TraceBuffer::kDefaultCapacity;
    return new Injector(options);
  }();
  return *injector;
}

const kernel::KernelImage& image() { return kernel::built_kernel(); }

// The deterministic Table 7 severe crash: reversing free_pages' refcount
// assert executes the BUG() ud2 immediately.
InjectionSpec assert_reversal_spec() {
  const kernel::KernelFunction* fn = image().function("free_pages");
  EXPECT_NE(fn, nullptr);
  const auto sites = enumerate_function(image(), *fn);
  const InstructionSite* guard = nullptr;
  for (std::size_t i = 0; i + 1 < sites.size(); ++i) {
    if (sites[i].is_cond_branch && sites[i + 1].disasm == "ud2a") {
      guard = &sites[i];
      break;
    }
  }
  EXPECT_NE(guard, nullptr);
  InjectionSpec spec;
  spec.campaign = Campaign::IncorrectBranch;
  spec.function = "free_pages";
  spec.subsystem = fn->subsystem;
  spec.instr_addr = guard->addr;
  spec.instr_len = static_cast<std::uint8_t>(guard->bytes.size());
  spec.byte_index = static_cast<std::uint8_t>(condition_byte_index(*guard));
  spec.bit_index = 0;
  spec.workload = "spawn";
  return spec;
}

TEST(TraceIntegration, TracingIsObservational) {
  // The same spec must classify bit-identically with and without the
  // event sink attached — recording may never perturb the guest.
  const InjectionSpec spec = assert_reversal_spec();
  const InjectionResult off = untraced_injector().run_one(spec);
  const InjectionResult on = traced_injector().run_one(spec);
  EXPECT_EQ(off.outcome, on.outcome);
  EXPECT_EQ(off.activation_cycle, on.activation_cycle);
  EXPECT_EQ(off.cause, on.cause);
  EXPECT_EQ(off.crash_eip, on.crash_eip);
  EXPECT_EQ(off.crash_addr, on.crash_addr);
  EXPECT_EQ(off.crash_subsystem, on.crash_subsystem);
  EXPECT_EQ(off.propagated, on.propagated);
  EXPECT_EQ(off.latency_cycles, on.latency_cycles);
  EXPECT_EQ(off.severity, on.severity);
  EXPECT_EQ(off.fs_damaged, on.fs_damaged);
  EXPECT_EQ(off.bootable, on.bootable);
  EXPECT_EQ(off.disasm_before, on.disasm_before);
  EXPECT_EQ(off.disasm_after, on.disasm_after);
  EXPECT_EQ(untraced_injector().trace(), nullptr);
  ASSERT_NE(traced_injector().trace(), nullptr);
}

TEST(TraceIntegration, CrashWindowHoldsTriggerFlipAndOops) {
  const InjectionSpec spec = assert_reversal_spec();
  const InjectionResult result = traced_injector().run_one(spec);
  ASSERT_EQ(result.outcome, Outcome::DumpedCrash);

  const std::vector<trace::Event> events = traced_injector().trace()->events();
  ASSERT_FALSE(events.empty());
  const trace::Event* trigger = nullptr;
  const trace::Event* flip = nullptr;
  const trace::Event* oops = nullptr;
  for (const trace::Event& e : events) {
    if (e.kind == trace::EventKind::InjectTrigger && trigger == nullptr) {
      trigger = &e;
    } else if (e.kind == trace::EventKind::InjectFlip && flip == nullptr) {
      flip = &e;
    } else if (e.kind == trace::EventKind::CrashReport && oops == nullptr) {
      oops = &e;
    }
  }
  ASSERT_NE(trigger, nullptr) << "breakpoint hit must be recorded";
  ASSERT_NE(flip, nullptr) << "bit flip must be recorded";
  ASSERT_NE(oops, nullptr) << "crash dump must be recorded";
  EXPECT_EQ(trigger->a, spec.instr_addr);
  EXPECT_EQ(flip->a, spec.instr_addr);
  EXPECT_EQ(flip->b >> 8, spec.byte_index);
  EXPECT_EQ(flip->b & 0xFFu, spec.bit_index);
  EXPECT_NE(flip->c, flip->d) << "before/after bytes differ by one bit";
  EXPECT_EQ(flip->c ^ flip->d, 1u << spec.bit_index);
  EXPECT_EQ(oops->c, result.crash_eip);
  // Causality: the story reads trigger -> flip -> oops.
  EXPECT_LE(trigger->cycle, flip->cycle);
  EXPECT_LE(flip->cycle, oops->cycle);

  const std::string timeline = trace::render_timeline(events);
  EXPECT_NE(timeline.find("TRIGGER"), std::string::npos);
  EXPECT_NE(timeline.find("FLIP"), std::string::npos);
  EXPECT_NE(timeline.find("OOPS"), std::string::npos);
}

TEST(TraceIntegration, WindowClearsBetweenInjections) {
  // A NotActivated follow-up run must not inherit the crash window.
  const kernel::KernelFunction* fn = image().function("sys_unlink");
  ASSERT_NE(fn, nullptr);
  const auto sites = enumerate_function(image(), *fn);
  ASSERT_FALSE(sites.empty());
  InjectionSpec spec;
  spec.function = "sys_unlink";
  spec.subsystem = fn->subsystem;
  spec.instr_addr = sites[0].addr;
  spec.instr_len = static_cast<std::uint8_t>(sites[0].bytes.size());
  spec.byte_index = 0;
  spec.bit_index = 3;
  spec.workload = "pipe";
  const InjectionResult result = traced_injector().run_one(spec);
  EXPECT_EQ(result.outcome, Outcome::NotActivated);
  for (const trace::Event& e : traced_injector().trace()->events()) {
    EXPECT_NE(e.kind, trace::EventKind::InjectFlip)
        << "stale flip event from a previous injection's window";
    EXPECT_NE(e.kind, trace::EventKind::CrashReport);
  }
}

TEST(TraceIntegration, PerfStatsAggregateTraceTotals) {
  traced_injector().run_one(assert_reversal_spec());
  const machine::PerfStats traced = traced_injector().perf_stats();
  EXPECT_GT(traced.trace_events, 0u);
  EXPECT_EQ(traced.trace_events, traced_injector().trace()->total_recorded());
  const machine::PerfStats off = untraced_injector().perf_stats();
  EXPECT_EQ(off.trace_events, 0u);
  EXPECT_EQ(off.trace_dropped, 0u);
}

TEST(TraceIntegration, TracedPropagationMatchesReplay) {
  // A tiny campaign C over free_pages: every DumpedCrash replays
  // cleanly under trace and attributes to the first fault after the
  // flip.  The assert crashes fault inside mm itself.
  CampaignConfig config;
  config.campaign = Campaign::IncorrectBranch;
  config.functions = {"free_pages"};
  const CampaignRun run =
      run_campaign(untraced_injector(), profile::default_profile(), config);
  std::size_t crashes = 0;
  for (const InjectionResult& r : run.results) {
    crashes += r.outcome == Outcome::DumpedCrash &&
               r.spec.subsystem == kernel::Subsystem::Mm;
  }
  ASSERT_GT(crashes, 0u) << "assert reversals must crash";

  const analysis::TracedPropagation tp = analysis::make_traced_propagation(
      traced_injector(), run, kernel::Subsystem::Mm);
  EXPECT_EQ(tp.replayed, crashes);
  EXPECT_EQ(tp.skipped, 0u);
  EXPECT_EQ(tp.mismatches, 0u) << "replays must be deterministic";
  EXPECT_EQ(tp.graph.total_crashes, crashes);
  // The ud2 executes inside free_pages: self-propagation.
  EXPECT_GE(tp.graph.self_share(), 0.5);

  // A cap of 1 replays one crash and reports the rest as skipped.
  if (crashes > 1) {
    const analysis::TracedPropagation capped =
        analysis::make_traced_propagation(traced_injector(), run,
                                          kernel::Subsystem::Mm, 1);
    EXPECT_EQ(capped.replayed, 1u);
    EXPECT_EQ(capped.skipped, crashes - 1);
  }
}

TEST(TraceIntegration, TracedPropagationRequiresTracer) {
  const CampaignRun empty_run;
  EXPECT_THROW(analysis::make_traced_propagation(untraced_injector(),
                                                 empty_run,
                                                 kernel::Subsystem::Mm),
               std::invalid_argument);
}

}  // namespace
}  // namespace kfi::inject
