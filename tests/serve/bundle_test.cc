// Golden-bundle files: the serialized WorkloadGolden round-trips
// bit-exactly through write_bundle/load_bundle, stale or corrupt
// bundles are rejected at load, and an adopted bundle substitutes for a
// locally built artifact without changing a single injection result.
#include "serve/bundle.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "analysis/io.h"
#include "inject/golden.h"
#include "kernel/build.h"

namespace kfi::serve {
namespace {

std::string fresh_dir(const std::string& name) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / name).string();
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

// One golden build for the whole suite: bundle tests only need a real
// artifact to serialize, not a fresh boot per TEST.
class BundleTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    cache_ = new inject::GoldenCache(options());
    kernel_fp_ = analysis::kernel_fingerprint(kernel::built_kernel());
  }
  static void TearDownTestSuite() {
    delete cache_;
    cache_ = nullptr;
  }

  static inject::InjectorOptions options() { return {}; }

  static inject::GoldenCache* cache_;
  static std::uint64_t kernel_fp_;
};

inject::GoldenCache* BundleTest::cache_ = nullptr;
std::uint64_t BundleTest::kernel_fp_ = 0;

TEST_F(BundleTest, RoundTripPreservesTheWholeArtifact) {
  const inject::WorkloadGolden& original = cache_->workload("pipe");
  const std::string dir = fresh_dir("kfi_bundle_test_roundtrip");
  const std::string path = bundle_path(dir, "pipe", options(), kernel_fp_);

  const auto hash = write_bundle(path, "pipe", original, options(),
                                 kernel_fp_);
  ASSERT_TRUE(hash.has_value());

  const auto loaded = load_bundle(path, "pipe", options(), kernel_fp_, *hash);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->content_hash, *hash);
  ASSERT_NE(loaded->keepalive, nullptr);

  const inject::WorkloadGolden& back = loaded->artifact;
  EXPECT_EQ(back.golden.ok, original.golden.ok);
  EXPECT_EQ(back.golden.console, original.golden.console);
  EXPECT_EQ(back.golden.exit_code, original.golden.exit_code);
  EXPECT_EQ(back.golden.fs_digest, original.golden.fs_digest);
  EXPECT_EQ(back.golden.cycles, original.golden.cycles);
  EXPECT_EQ(back.golden.bootable, original.golden.bootable);
  EXPECT_EQ(back.golden.fs_damaged, original.golden.fs_damaged);
  EXPECT_EQ(back.golden.fsck_unrepairable, original.golden.fsck_unrepairable);
  EXPECT_EQ(back.golden.repair_verified, original.golden.repair_verified);
  EXPECT_EQ(back.coverage, original.coverage);
  ASSERT_EQ(back.first_touch.size(), original.first_touch.size());
  for (const auto& [addr, window] : original.first_touch) {
    const auto it = back.first_touch.find(addr);
    ASSERT_NE(it, back.first_touch.end());
    EXPECT_EQ(it->second.first, window.first);
    EXPECT_EQ(it->second.last, window.last);
  }
  ASSERT_NE(back.boot, nullptr);
  EXPECT_EQ(back.boot->eip, original.boot->eip);
  EXPECT_EQ(back.boot->cycles, original.boot->cycles);
  EXPECT_EQ(back.boot->cr3, original.boot->cr3);
  for (int i = 0; i < 8; ++i)
    EXPECT_EQ(back.boot->regs[i], original.boot->regs[i]);
  ASSERT_EQ(back.ladder.size(), original.ladder.size());
  for (std::size_t i = 0; i < back.ladder.size(); ++i) {
    EXPECT_EQ(back.ladder[i].cycle, original.ladder[i].cycle);
    EXPECT_EQ(back.ladder[i].eip, original.ladder[i].eip);
  }
}

TEST_F(BundleTest, DeterministicBytesAcrossRewrites) {
  const inject::WorkloadGolden& artifact = cache_->workload("pipe");
  const std::string dir = fresh_dir("kfi_bundle_test_deterministic");
  const auto h1 = write_bundle(dir + "/one.kfib", "pipe", artifact, options(),
                               kernel_fp_);
  const auto h2 = write_bundle(dir + "/two.kfib", "pipe", artifact, options(),
                               kernel_fp_);
  ASSERT_TRUE(h1.has_value() && h2.has_value());
  // Coverage and first-touch are hash maps in memory; the bundle must
  // serialize them in a canonical order for the content hash to be
  // stable across writers.
  EXPECT_EQ(*h1, *h2);
}

TEST_F(BundleTest, RejectsMismatchedIdentityAndCorruption) {
  const inject::WorkloadGolden& artifact = cache_->workload("pipe");
  const std::string dir = fresh_dir("kfi_bundle_test_reject");
  const std::string path = dir + "/bundle.kfib";
  const auto hash = write_bundle(path, "pipe", artifact, options(),
                                 kernel_fp_);
  ASSERT_TRUE(hash.has_value());

  // Wrong workload name.
  EXPECT_FALSE(load_bundle(path, "syscall", options(), kernel_fp_).has_value());
  // Wrong kernel build.
  EXPECT_FALSE(load_bundle(path, "pipe", options(), kernel_fp_ ^ 1)
                   .has_value());
  // Wrong ladder geometry.
  inject::InjectorOptions other = options();
  other.checkpoints += 1;
  EXPECT_FALSE(load_bundle(path, "pipe", other, kernel_fp_).has_value());
  // Manifest hash mismatch.
  EXPECT_FALSE(load_bundle(path, "pipe", options(), kernel_fp_, *hash ^ 1)
                   .has_value());

  // Truncation.
  const std::string cut = dir + "/cut.kfib";
  std::filesystem::copy_file(path, cut);
  std::filesystem::resize_file(cut,
                               std::filesystem::file_size(cut) * 3 / 4);
  EXPECT_FALSE(load_bundle(cut, "pipe", options(), kernel_fp_).has_value());

  // A flipped byte in the payload against the recorded hash.
  const std::string bad = dir + "/bad.kfib";
  std::filesystem::copy_file(path, bad);
  {
    std::fstream f(bad, std::ios::in | std::ios::out | std::ios::binary);
    const auto size = static_cast<long>(std::filesystem::file_size(bad));
    char byte = 0;
    f.seekg(size / 2);
    f.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x01);
    f.seekp(size / 2);
    f.write(&byte, 1);
  }
  EXPECT_FALSE(load_bundle(bad, "pipe", options(), kernel_fp_, *hash)
                   .has_value());
}

TEST_F(BundleTest, AdoptedBundleSubstitutesForALocalBuild) {
  const inject::WorkloadGolden& original = cache_->workload("pipe");
  const std::string dir = fresh_dir("kfi_bundle_test_adopt");
  const std::string path = bundle_path(dir, "pipe", options(), kernel_fp_);
  const auto hash = write_bundle(path, "pipe", original, options(),
                                 kernel_fp_);
  ASSERT_TRUE(hash.has_value());
  auto loaded = load_bundle(path, "pipe", options(), kernel_fp_, *hash);
  ASSERT_TRUE(loaded.has_value());

  inject::GoldenCache adopter(options());
  EXPECT_TRUE(adopter.adopt_workload("pipe", std::move(loaded->artifact),
                                     loaded->keepalive));
  EXPECT_EQ(adopter.adoptions(), 1u);
  // The adopted entry wins: asking for the workload must not build.
  const inject::WorkloadGolden& adopted = adopter.workload("pipe");
  EXPECT_EQ(adopter.golden_builds(), 0u);
  EXPECT_EQ(adopted.golden.cycles, original.golden.cycles);
  EXPECT_EQ(adopted.coverage, original.coverage);
  // A second adoption under the same name is refused.
  EXPECT_FALSE(adopter.adopt_workload("pipe", inject::WorkloadGolden{},
                                      nullptr));
  EXPECT_EQ(adopter.adoptions(), 1u);
}

}  // namespace
}  // namespace kfi::serve
