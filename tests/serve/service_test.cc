// The process-sharded campaign service: the sharded digest is
// bit-identical to the in-process run_campaign() path at every worker
// count, a killed campaign resumes from exactly its completed shards,
// and a corrupted shard artifact is rejected by content hash and
// re-run.  These are the contracts kfi_campaignd and the CI sharded
// smoke leg gate at full scale; here they run on a trimmed two-slot
// campaign so the whole suite stays in tier-1 time.
#include "serve/service.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "analysis/store.h"
#include "check/expectations.h"
#include "check/replay.h"
#include "inject/injector.h"
#include "profile/profile.h"

namespace kfi::serve {
namespace {

std::string temp_path(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

std::string fresh_dir(const std::string& name) {
  const std::string dir = temp_path(name);
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

// Two campaign slots (a random-bit slot and a reversed-branch slot)
// over a pared-down function list: big enough to span multiple
// workloads, shards, and the A/C slot boundary; small enough to run
// many service invocations per suite.
std::vector<inject::CampaignConfig> test_campaigns() {
  inject::CampaignConfig a = check::smoke_config(
      inject::Campaign::RandomNonBranch);
  a.functions = {"pipe_read"};
  inject::CampaignConfig c = check::smoke_config(
      inject::Campaign::IncorrectBranch);
  c.functions = {"pipe_read", "free_pages"};
  return {a, c};
}

ServiceConfig base_config(const std::string& dir) {
  ServiceConfig config;
  config.campaigns = test_campaigns();
  config.dir = dir;
  // All tests share one bundle directory: the first prepare pays for
  // boot + golden + ladder, every later one adopts from disk.
  config.bundle_dir = temp_path("kfi_service_test_bundles");
  config.workers = 1;
  return config;
}

// The in-process reference, computed once per suite.
const std::vector<inject::CampaignRun>& reference_runs() {
  static const std::vector<inject::CampaignRun> runs = [] {
    inject::Injector injector(inject::InjectorOptions{});
    std::vector<inject::CampaignRun> out;
    for (inject::CampaignConfig config : test_campaigns()) {
      config.threads = 1;
      out.push_back(inject::run_campaign(
          injector, profile::default_profile(), config));
    }
    return out;
  }();
  return runs;
}

std::uint64_t reference_digest() {
  return analysis::results_digest(reference_runs());
}

TEST(Service, SingleWorkerMatchesInProcessResultForResult) {
  ServiceConfig config = base_config(fresh_dir("kfi_service_test_w1"));
  const ServiceResult result = run_service(config, /*materialize=*/true);
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.digest, reference_digest());
  ASSERT_EQ(result.runs.size(), reference_runs().size());
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < result.runs.size(); ++i) {
    const check::RunComparison cmp =
        check::compare_runs(reference_runs()[i], result.runs[i]);
    EXPECT_TRUE(cmp.identical())
        << "campaign slot " << i << ": " << cmp.mismatches.size()
        << " mismatches of " << cmp.compared;
    total += result.runs[i].results.size();
  }
  EXPECT_EQ(result.total_runs, total);
  EXPECT_GT(result.shard_count, 1u);
  EXPECT_EQ(result.shards_executed, result.shard_count);
  EXPECT_EQ(result.shards_resumed, 0u);
  EXPECT_EQ(result.corrupt_discarded, 0u);
}

TEST(Service, EveryWorkerCountFoldsTheIdenticalDigest) {
  for (const unsigned workers : {2u, 4u}) {
    ServiceConfig config = base_config(
        fresh_dir("kfi_service_test_w" + std::to_string(workers)));
    config.workers = workers;
    const ServiceResult result = run_service(config);
    ASSERT_TRUE(result.ok) << "workers=" << workers << ": " << result.error;
    EXPECT_EQ(result.digest, reference_digest()) << "workers=" << workers;
    EXPECT_EQ(result.total_runs, reference_runs()[0].results.size() +
                                     reference_runs()[1].results.size());
    // 4 shards per worker by default.
    EXPECT_EQ(result.shard_count, 4u * workers);
  }
}

TEST(Service, KilledCampaignResumesFromCompletedShards) {
  const std::string dir = fresh_dir("kfi_service_test_resume");
  ServiceConfig config = base_config(dir);

  // First invocation: every worker dies after one shard and the
  // controller gets one wave — a partial campaign on disk.
  ServiceConfig killed = config;
  killed.max_shards_per_worker = 1;
  killed.max_attempts = 1;
  const ServiceResult partial = run_service(killed);
  EXPECT_FALSE(partial.ok);
  EXPECT_EQ(partial.corrupt_discarded, 0u);

  // The artifacts that did land are whole (atomic rename): exactly one
  // shard from the single worker's single completed claim.
  const analysis::ShardStore store(dir + "/shards");
  std::uint64_t completed = 0;
  for (std::uint64_t shard = 0; shard < partial.shard_count; ++shard) {
    const auto path = store.find_shard(shard);
    if (!path.has_value()) continue;
    EXPECT_TRUE(analysis::ShardStore::verify_shard(*path));
    ++completed;
  }
  EXPECT_EQ(completed, 1u);

  // Second invocation, same config: resumes instead of restarting, and
  // the digest still matches the in-process path bit for bit.
  const ServiceResult resumed = run_service(config);
  ASSERT_TRUE(resumed.ok) << resumed.error;
  EXPECT_EQ(resumed.digest, reference_digest());
  EXPECT_EQ(resumed.shards_resumed, completed);
  EXPECT_EQ(resumed.shards_executed, resumed.shard_count - completed);
}

TEST(Service, CorruptShardIsRejectedByHashAndReRun) {
  const std::string dir = fresh_dir("kfi_service_test_corrupt");
  ServiceConfig config = base_config(dir);
  const ServiceResult first = run_service(config);
  ASSERT_TRUE(first.ok) << first.error;

  // Flip a payload byte in shard 0's artifact, keeping its name — the
  // torn-write / bit-rot case.  Aggregation must refuse it.
  const analysis::ShardStore store(dir + "/shards");
  const auto victim = store.find_shard(0);
  ASSERT_TRUE(victim.has_value());
  {
    std::fstream f(*victim, std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.good());
    const auto size =
        static_cast<long>(std::filesystem::file_size(*victim));
    char byte = 0;
    f.seekg(size - 5);
    f.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x80);
    f.seekp(size - 5);
    f.write(&byte, 1);
  }
  ServiceResult aggregate;
  EXPECT_FALSE(aggregate_campaign(dir, false, aggregate));
  EXPECT_EQ(aggregate.corrupt_discarded, 1u);
  EXPECT_FALSE(store.find_shard(0).has_value());  // discarded

  // The controller re-runs exactly the discarded shard and converges on
  // the same digest.
  const ServiceResult repaired = run_service(config);
  ASSERT_TRUE(repaired.ok) << repaired.error;
  EXPECT_EQ(repaired.digest, reference_digest());
  EXPECT_EQ(repaired.shards_executed, 1u);
  EXPECT_EQ(repaired.shards_resumed, repaired.shard_count - 1);
}

TEST(Service, WorkersAdoptBundlesInsteadOfRebuilding) {
  ServiceConfig config = base_config(fresh_dir("kfi_service_test_bundle"));
  const ServiceResult result = run_service(config);
  ASSERT_TRUE(result.ok) << result.error;
  // Bundles either existed (shared bundle dir, built by an earlier
  // test) or were built by this prepare — but between the two runs of
  // this config's workloads, each bundle exists exactly once.
  EXPECT_GT(result.bundles_built + result.bundles_adopted, 0u);

  // A standalone worker against the prepared directory adopts every
  // manifest workload from its bundle: zero local golden rebuilds.
  const auto manifest = load_manifest(config.dir);
  ASSERT_TRUE(manifest.has_value());
  EXPECT_GE(manifest->workloads.size(), 1u);
  const WorkerReport report = run_worker(config.dir, 0, 1);
  EXPECT_TRUE(report.ok);
  EXPECT_EQ(report.bundle_adoptions, manifest->workloads.size());
  EXPECT_EQ(report.shards_completed, 0u);  // campaign already complete
}

// A one-slot campaign-D (register-file fault model) config over one
// function: the fault-model service contracts on a tier-1 budget.
ServiceConfig register_config(const std::string& dir) {
  ServiceConfig config;
  inject::CampaignConfig d =
      check::smoke_config(inject::Campaign::RegisterFile);
  d.functions = {"pipe_read"};
  config.campaigns = {d};
  config.dir = dir;
  config.bundle_dir = temp_path("kfi_service_test_bundles");
  config.workers = 1;
  return config;
}

const inject::CampaignRun& register_reference_run() {
  static const inject::CampaignRun run = [] {
    inject::Injector injector(inject::InjectorOptions{});
    inject::CampaignConfig d =
        check::smoke_config(inject::Campaign::RegisterFile);
    d.functions = {"pipe_read"};
    d.threads = 1;
    return inject::run_campaign(injector, profile::default_profile(), d);
  }();
  return run;
}

TEST(Service, RegisterCampaignKilledAndResumedStaysBitIdentical) {
  const std::string dir = fresh_dir("kfi_service_test_d_resume");
  ServiceConfig config = register_config(dir);

  // Kill the campaign after one shard, then resume: the fault-model
  // campaign must converge on the in-process digest like A/C do.
  ServiceConfig killed = config;
  killed.max_shards_per_worker = 1;
  killed.max_attempts = 1;
  const ServiceResult partial = run_service(killed);
  EXPECT_FALSE(partial.ok);

  const ServiceResult resumed = run_service(config, /*materialize=*/true);
  ASSERT_TRUE(resumed.ok) << resumed.error;
  EXPECT_EQ(resumed.shards_resumed, 1u);
  std::vector<inject::CampaignRun> reference;
  reference.push_back(register_reference_run());
  EXPECT_EQ(resumed.digest, analysis::results_digest(reference));
  ASSERT_EQ(resumed.runs.size(), 1u);
  const check::RunComparison cmp =
      check::compare_runs(register_reference_run(), resumed.runs[0]);
  EXPECT_TRUE(cmp.identical())
      << cmp.mismatches.size() << " mismatches of " << cmp.compared;
}

TEST(Service, MixedFaultModelResumeIsRejected) {
  // A directory holding a completed campaign-D manifest must not leak
  // shards into a campaign-A run over the same functions: the config
  // echo (campaign + fault-model byte) differs, so the service wipes
  // and restarts instead of resuming across models.
  const std::string dir = fresh_dir("kfi_service_test_mixed_model");
  ServiceConfig register_service = register_config(dir);
  const ServiceResult first = run_service(register_service);
  ASSERT_TRUE(first.ok) << first.error;

  ServiceConfig instr_service = register_service;
  instr_service.campaigns[0] =
      check::smoke_config(inject::Campaign::RandomNonBranch);
  instr_service.campaigns[0].functions = {"pipe_read"};
  const ServiceResult second = run_service(instr_service);
  ASSERT_TRUE(second.ok) << second.error;
  EXPECT_EQ(second.shards_resumed, 0u);
  EXPECT_EQ(second.shards_executed, second.shard_count);
  EXPECT_NE(second.digest, first.digest);
}

TEST(Service, FailingWorkersAreReapedAndCounted) {
  // Every worker exits 9 after completing one shard; the controller
  // must reap each one, record the non-zero exits, keep re-dispatching
  // waves, and still converge on the bit-identical digest.
  ServiceConfig config = base_config(fresh_dir("kfi_service_test_failing"));
  config.max_shards_per_worker = 1;
  config.worker_death = ServiceConfig::WorkerDeath::Fail;
  const ServiceResult result = run_service(config);
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.digest, reference_digest());
  EXPECT_GE(result.workers_failed, result.shard_count);
  EXPECT_EQ(result.workers_signaled, 0u);
}

TEST(Service, SignaledWorkersAreReapedAndCounted) {
  ServiceConfig config = base_config(fresh_dir("kfi_service_test_signaled"));
  config.max_shards_per_worker = 1;
  config.worker_death = ServiceConfig::WorkerDeath::Signal;
  const ServiceResult result = run_service(config);
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.digest, reference_digest());
  EXPECT_GE(result.workers_signaled, result.shard_count);
  EXPECT_EQ(result.workers_failed, 0u);
}

TEST(Service, DifferentConfigInvalidatesTheManifest) {
  const std::string dir = fresh_dir("kfi_service_test_invalidate");
  ServiceConfig config = base_config(dir);
  const ServiceResult first = run_service(config);
  ASSERT_TRUE(first.ok) << first.error;

  // Same directory, different seed: the manifest identity changes, so
  // stale shards must not be resumed into the new campaign.
  ServiceConfig changed = config;
  for (inject::CampaignConfig& campaign : changed.campaigns) {
    campaign.seed = 2004;
  }
  const ServiceResult second = run_service(changed);
  ASSERT_TRUE(second.ok) << second.error;
  EXPECT_EQ(second.shards_resumed, 0u);
  EXPECT_EQ(second.shards_executed, second.shard_count);
  EXPECT_NE(second.digest, first.digest);
}

}  // namespace
}  // namespace kfi::serve
