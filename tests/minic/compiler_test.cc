// MiniC end-to-end tests: compile, assemble, link, execute on the VM,
// and check results.  This is the toolchain the simulated kernel is
// built with, so correctness here underwrites everything above it.
#include <gtest/gtest.h>

#include "kasm/assembler.h"
#include "minic/codegen.h"
#include "vm/cpu.h"
#include "vm/hostmap.h"

namespace kfi::minic {
namespace {

constexpr std::uint32_t kTextBase = 0xC0105000;
constexpr std::uint32_t kDataBase = 0xC0200000;
constexpr std::uint32_t kStubBase = 0xC0104000;

// Compiles `source`, links it with a start stub that calls `main`, runs
// it until hlt, and returns eax.
class MiniCRunner {
 public:
  explicit MiniCRunner(std::string_view source)
      : memory(vm::kRamSize), cpu(memory, bus) {
    CompileResult compiled = compile(source, "test");
    EXPECT_TRUE(compiled.ok) << (compiled.errors.empty()
                                     ? "?"
                                     : compiled.errors[0]);
    if (!compiled.ok) return;

    kasm::AsmResult stub =
        kasm::assemble("start:\n  call main\n  hlt\n", kStubBase);
    kasm::AsmResult text = kasm::assemble(compiled.text_asm, kTextBase);
    kasm::AsmResult data = kasm::assemble(compiled.data_asm, kDataBase);
    EXPECT_TRUE(stub.ok && text.ok && data.ok)
        << (!text.ok && !text.errors.empty() ? text.errors[0] : "")
        << (!data.ok && !data.errors.empty() ? data.errors[0] : "");
    if (!stub.ok || !text.ok || !data.ok) return;

    std::vector<kasm::AsmUnit> units{stub.unit, text.unit, data.unit};
    kasm::LinkResult linked = kasm::link(units);
    EXPECT_TRUE(linked.ok) << (linked.errors.empty() ? "?"
                                                     : linked.errors[0]);
    if (!linked.ok) return;

    vm::HostMapper mapper(memory, vm::kBootPgdPhys, vm::kKernelPtePhys);
    mapper.map_range(vm::kKernelBase, 0, vm::kRamSize, vm::kPteWrite);
    cpu.mmu().set_cr3(vm::kBootPgdPhys);
    for (const kasm::AsmUnit& unit : units) {
      if (unit.bytes.empty()) continue;
      memory.write_block(vm::phys_of_virt(unit.base), unit.bytes.data(),
                         static_cast<std::uint32_t>(unit.bytes.size()));
    }
    // Minimal trap handling: every vector lands on a hlt stub so traps
    // are observable without a double fault.
    constexpr std::uint32_t kTrapStub = 0xC0103000;
    memory.fill(vm::phys_of_virt(kTrapStub), 64, 0xF4);
    for (int v = 0; v < 32; ++v) cpu.set_vector(v, kTrapStub);
    memory.write32(vm::kTssPhys, vm::kBootStackTop - 0x1000);

    cpu.set_eip(kStubBase);
    cpu.set_reg(isa::Reg::Esp, vm::kBootStackTop);
    ready = true;
  }

  // Runs to hlt; returns eax.  Fails the test on trap or timeout.
  std::uint32_t run(std::uint64_t max_steps = 2'000'000) {
    EXPECT_TRUE(ready);
    for (std::uint64_t i = 0; i < max_steps; ++i) {
      const vm::CpuEvent event = cpu.step();
      if (event.kind == vm::CpuEventKind::Halted) {
        return cpu.reg(isa::Reg::Eax);
      }
      if (event.trap_taken) {
        ADD_FAILURE() << "unexpected trap "
                      << isa::trap_name(cpu.last_trap().trap) << " at eip "
                      << std::hex << cpu.last_trap().faulting_eip
                      << " addr " << cpu.last_trap().fault_addr;
        return 0xDEADDEAD;
      }
    }
    ADD_FAILURE() << "program did not halt";
    return 0xDEADDEAD;
  }

  vm::PhysicalMemory memory;
  vm::Bus bus;
  vm::Cpu cpu;
  bool ready = false;
};

std::uint32_t run_minic(std::string_view source,
                        std::uint64_t max_steps = 2'000'000) {
  MiniCRunner runner(source);
  return runner.run(max_steps);
}

TEST(MiniC, ReturnsConstant) {
  EXPECT_EQ(run_minic("func main() { return 42; }"), 42u);
}

TEST(MiniC, HexLiterals) {
  EXPECT_EQ(run_minic("func main() { return 0xC0130A33; }"), 0xC0130A33u);
}

TEST(MiniC, ArithmeticPrecedence) {
  EXPECT_EQ(run_minic("func main() { return 2 + 3 * 4; }"), 14u);
  EXPECT_EQ(run_minic("func main() { return (2 + 3) * 4; }"), 20u);
  EXPECT_EQ(run_minic("func main() { return 20 / 4 - 1; }"), 4u);
  EXPECT_EQ(run_minic("func main() { return 17 % 5; }"), 2u);
}

TEST(MiniC, UnaryOperators) {
  EXPECT_EQ(run_minic("func main() { return -5 + 7; }"), 2u);
  EXPECT_EQ(run_minic("func main() { return ~0; }"), 0xFFFFFFFFu);
  EXPECT_EQ(run_minic("func main() { return !0; }"), 1u);
  EXPECT_EQ(run_minic("func main() { return !7; }"), 0u);
}

TEST(MiniC, BitwiseAndShifts) {
  EXPECT_EQ(run_minic("func main() { return 0xF0 | 0x0F; }"), 0xFFu);
  EXPECT_EQ(run_minic("func main() { return 0xFF & 0x0F; }"), 0x0Fu);
  EXPECT_EQ(run_minic("func main() { return 0xFF ^ 0x0F; }"), 0xF0u);
  EXPECT_EQ(run_minic("func main() { return 1 << 12; }"), 4096u);
  EXPECT_EQ(run_minic("func main() { return 0xB728 >> 12; }"), 0xBu);
}

TEST(MiniC, ComparisonsSigned) {
  EXPECT_EQ(run_minic("func main() { return 1 < 2; }"), 1u);
  EXPECT_EQ(run_minic("func main() { return -1 < 2; }"), 1u);
  EXPECT_EQ(run_minic("func main() { return 2 <= 2; }"), 1u);
  EXPECT_EQ(run_minic("func main() { return 3 > 4; }"), 0u);
  EXPECT_EQ(run_minic("func main() { return 0 == 0; }"), 1u);
  EXPECT_EQ(run_minic("func main() { return 1 != 1; }"), 0u);
}

TEST(MiniC, ComparisonsUnsigned) {
  // 0xC0000000 as signed is negative; unsigned compare must say it is
  // bigger than 1 (address comparisons in the kernel rely on this).
  EXPECT_EQ(run_minic("func main() { return 0xC0000000 >u 1; }"), 1u);
  EXPECT_EQ(run_minic("func main() { return 0xC0000000 > 1; }"), 0u);
  EXPECT_EQ(run_minic("func main() { return 1 <u 0xFFFFFFFF; }"), 1u);
  EXPECT_EQ(run_minic("func main() { return 5 >=u 5; }"), 1u);
}

TEST(MiniC, ShortCircuitLogic) {
  // Division by zero on the right side must not run.
  EXPECT_EQ(run_minic("func main() { return 0 && (1 / 0); }"), 0u);
  EXPECT_EQ(run_minic("func main() { return 1 || (1 / 0); }"), 1u);
  EXPECT_EQ(run_minic("func main() { return 1 && 2; }"), 1u);
  EXPECT_EQ(run_minic("func main() { return 0 || 0; }"), 0u);
}

TEST(MiniC, LocalsAndAssignment) {
  EXPECT_EQ(run_minic(R"(
    func main() {
      var a = 10;
      var b;
      b = a * 2;
      a = b + 5;
      return a;
    }
  )"), 25u);
}

TEST(MiniC, IfElseChains) {
  const char* src = R"(
    func classify(x) {
      if (x < 0) { return 1; }
      else if (x == 0) { return 2; }
      else { return 3; }
    }
    func main() {
      return classify(-5) * 100 + classify(0) * 10 + classify(9);
    }
  )";
  EXPECT_EQ(run_minic(src), 123u);
}

TEST(MiniC, WhileLoopSum) {
  EXPECT_EQ(run_minic(R"(
    func main() {
      var i = 1;
      var sum = 0;
      while (i <= 100) {
        sum = sum + i;
        i = i + 1;
      }
      return sum;
    }
  )"), 5050u);
}

TEST(MiniC, BreakAndContinue) {
  EXPECT_EQ(run_minic(R"(
    func main() {
      var i = 0;
      var sum = 0;
      while (1) {
        i = i + 1;
        if (i > 10) { break; }
        if (i % 2 == 0) { continue; }
        sum = sum + i;   // 1+3+5+7+9
      }
      return sum;
    }
  )"), 25u);
}

TEST(MiniC, GotoAndLabels) {
  // The kernel's pipe_read error-path idiom (paper §8).
  EXPECT_EQ(run_minic(R"(
    func main() {
      var ret = 0 - 29;   // -ESPIPE
      var read = 0;
      if (1) { goto out_nolock; }
      ret = 7;
    out_nolock:
      if (read) { ret = read; }
      return ret;
    }
  )"), static_cast<std::uint32_t>(-29));
}

TEST(MiniC, FunctionCallsAndRecursion) {
  EXPECT_EQ(run_minic(R"(
    func fib(n) {
      if (n < 2) { return n; }
      return fib(n - 1) + fib(n - 2);
    }
    func main() { return fib(15); }
  )"), 610u);
}

TEST(MiniC, MultipleParameters) {
  EXPECT_EQ(run_minic(R"(
    func weigh(a, b, c, d) { return a * 1000 + b * 100 + c * 10 + d; }
    func main() { return weigh(1, 2, 3, 4); }
  )"), 1234u);
}

TEST(MiniC, GlobalsPersistAcrossCalls) {
  EXPECT_EQ(run_minic(R"(
    global counter = 5;
    func bump() { counter = counter + 3; return 0; }
    func main() {
      bump();
      bump();
      return counter;
    }
  )"), 11u);
}

TEST(MiniC, ArraysViaMemAccess) {
  EXPECT_EQ(run_minic(R"(
    array table[8];
    func main() {
      var i = 0;
      while (i < 8) {
        mem[table + i * 4] = i * i;
        i = i + 1;
      }
      return mem[table + 5 * 4];
    }
  )"), 25u);
}

TEST(MiniC, ByteMemoryAccess) {
  EXPECT_EQ(run_minic(R"(
    array buf[2];
    func main() {
      memb[buf] = 0x11;
      memb[buf + 1] = 0x22;
      memb[buf + 2] = 0x33;
      memb[buf + 3] = 0x44;
      return mem[buf];   // little endian
    }
  )"), 0x44332211u);
}

TEST(MiniC, ByteLoadsZeroExtend) {
  EXPECT_EQ(run_minic(R"(
    array buf[1];
    func main() {
      mem[buf] = 0xFFFFFFFF;
      return memb[buf + 1];
    }
  )"), 0xFFu);
}

TEST(MiniC, ConstantsFold) {
  EXPECT_EQ(run_minic(R"(
    const PAGE_SIZE = 4096;
    const PAGE_SHIFT = 12;
    const TWO_PAGES = PAGE_SIZE * 2;
    func main() { return TWO_PAGES >> PAGE_SHIFT; }
  )"), 2u);
}

TEST(MiniC, AddressOfGlobal) {
  EXPECT_EQ(run_minic(R"(
    global slot = 77;
    func main() {
      var p = &slot;
      mem[p] = 88;
      return slot;
    }
  )"), 88u);
}

TEST(MiniC, StringsAreNulTerminatedData) {
  EXPECT_EQ(run_minic(R"(
    func strlen(s) {
      var n = 0;
      while (memb[s + n] != 0) { n = n + 1; }
      return n;
    }
    func main() { return strlen("panic!"); }
  )"), 6u);
}

TEST(MiniC, AssertPassesWhenTrue) {
  EXPECT_EQ(run_minic(R"(
    func main() {
      assert(1 + 1 == 2);
      return 7;
    }
  )"), 7u);
}

TEST(MiniC, AssertFailureExecutesUd2) {
  // assert(false) must execute ud2 -> invalid opcode trap, exactly the
  // BUG() mechanism the paper describes for campaign C crashes.
  MiniCRunner runner("func main() { assert(0); return 7; }");
  ASSERT_TRUE(runner.ready);
  bool trapped = false;
  for (int i = 0; i < 1000; ++i) {
    const vm::CpuEvent event = runner.cpu.step();
    if (event.trap_taken) {
      EXPECT_EQ(event.trap, isa::Trap::InvalidOpcode);
      trapped = true;
      break;
    }
    if (event.kind != vm::CpuEventKind::Executed) break;
  }
  EXPECT_TRUE(trapped);
}

TEST(MiniC, AsmEscape) {
  EXPECT_EQ(run_minic(R"(
    func main() {
      asm("mov $123, %eax");
      asm("mov %eax, %ebx");
      return 321;
    }
  )"), 321u);
}

TEST(MiniC, NestedCallsAsArguments) {
  EXPECT_EQ(run_minic(R"(
    func add(a, b) { return a + b; }
    func main() { return add(add(1, 2), add(3, 4)); }
  )"), 10u);
}

TEST(MiniC, CommentsIgnored) {
  EXPECT_EQ(run_minic(R"(
    // line comment
    /* block
       comment */
    func main() { return 1; /* inline */ }
  )"), 1u);
}

TEST(MiniC, DivByLargeUnsigned) {
  // '/' is unsigned: 0xFFFFFFFE / 2 = 0x7FFFFFFF.
  EXPECT_EQ(run_minic("func main() { return 0xFFFFFFFE / 2; }"), 0x7FFFFFFFu);
}

TEST(MiniCErrors, UndeclaredIdentifier) {
  const CompileResult r = compile("func main() { return nosuch; }", "t");
  EXPECT_FALSE(r.ok);
  ASSERT_FALSE(r.errors.empty());
  EXPECT_NE(r.errors[0].find("undeclared"), std::string::npos);
}

TEST(MiniCErrors, DuplicateLocal) {
  const CompileResult r =
      compile("func main() { var x; var x; return 0; }", "t");
  EXPECT_FALSE(r.ok);
}

TEST(MiniCErrors, BreakOutsideLoop) {
  const CompileResult r = compile("func main() { break; return 0; }", "t");
  EXPECT_FALSE(r.ok);
}

TEST(MiniCErrors, SyntaxErrorHasLineNumber) {
  const CompileResult r = compile("func main() {\n  return + ;\n}", "t");
  EXPECT_FALSE(r.ok);
  ASSERT_FALSE(r.errors.empty());
  EXPECT_NE(r.errors[0].find("line 2"), std::string::npos);
}

TEST(MiniCErrors, AssignToConst) {
  const CompileResult r =
      compile("const K = 3; func main() { K = 4; return 0; }", "t");
  EXPECT_FALSE(r.ok);
}

TEST(MiniCErrors, NonConstantGlobalInit) {
  const CompileResult r =
      compile("global g = other; func main() { return 0; }", "t");
  EXPECT_FALSE(r.ok);
}

}  // namespace
}  // namespace kfi::minic
