// MiniC front-end negative paths and additional language semantics.
#include <gtest/gtest.h>

#include "minic/codegen.h"
#include "minic/lexer.h"
#include "minic/parser.h"

namespace kfi::minic {
namespace {

bool compiles(const std::string& src) {
  return compile(src, "t").ok;
}

TEST(Lexer, TokenKinds) {
  const LexResult r = lex("func x_1 ( ) { return 0x1F + 42; } \"str\\n\"");
  ASSERT_TRUE(r.ok);
  // func, x_1, (, ), {, return, 0x1F, +, 42, ;, }, "str\n", End
  ASSERT_EQ(r.tokens.size(), 13u);
  EXPECT_EQ(r.tokens[0].kind, TokKind::Ident);
  EXPECT_EQ(r.tokens[6].kind, TokKind::Number);
  EXPECT_EQ(r.tokens[6].number, 0x1F);
  EXPECT_EQ(r.tokens[8].number, 42);
  EXPECT_EQ(r.tokens[11].kind, TokKind::String);
  EXPECT_EQ(r.tokens[11].text, "str\n");
}

TEST(Lexer, UnsignedComparisonLexing) {
  const LexResult r = lex("a <u b <=u c >u d >=u e");
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.tokens[1].text, "<u");
  EXPECT_EQ(r.tokens[3].text, "<=u");
  EXPECT_EQ(r.tokens[5].text, ">u");
  EXPECT_EQ(r.tokens[7].text, ">=u");
}

TEST(Lexer, RejectsBadCharacters) {
  EXPECT_FALSE(lex("func f() { return a @ b; }").ok);
  EXPECT_FALSE(lex("func f() { return `x`; }").ok);
}

TEST(Lexer, RejectsUnterminatedString) {
  EXPECT_FALSE(lex("func f() { print(\"oops").ok);
}

TEST(Lexer, RejectsUnterminatedBlockComment) {
  EXPECT_FALSE(lex("/* never closed").ok);
}

TEST(Lexer, RejectsMalformedHex) {
  EXPECT_FALSE(lex("func f() { return 0x; }").ok);
  EXPECT_FALSE(lex("func f() { return 12abc; }").ok);
}

TEST(Parser, RejectsMissingBraces) {
  EXPECT_FALSE(parse("func f() return 0;").ok);
}

TEST(Parser, RejectsBadTopLevel) {
  EXPECT_FALSE(parse("int x;").ok);
  EXPECT_FALSE(parse("x = 3;").ok);
}

TEST(Parser, RejectsNonConstantArraySize) {
  EXPECT_FALSE(parse("global n = 4; array a[n];").ok);
  EXPECT_FALSE(parse("array a[0];").ok);
}

TEST(Parser, ConstExpressionsFold) {
  const ParseResult r = parse("const A = 2 + 3 * 4; const B = A << 2;");
  ASSERT_TRUE(r.ok);
  ASSERT_EQ(r.program.consts.size(), 2u);
  EXPECT_EQ(r.program.consts[0].second, 14);
  EXPECT_EQ(r.program.consts[1].second, 56);
}

TEST(Parser, ConstDivisionByZeroRejected) {
  EXPECT_FALSE(parse("const A = 1 / 0;").ok);
}

TEST(Parser, AsmRequiresStringLiteral) {
  EXPECT_FALSE(parse("func f() { asm(42); return 0; }").ok);
}

TEST(Parser, ElseIfChainsParse) {
  EXPECT_TRUE(parse(R"(
    func f(x) {
      if (x == 1) { return 1; }
      else if (x == 2) { return 2; }
      else if (x == 3) { return 3; }
      else { return 0; }
    }
  )").ok);
}

TEST(Codegen, RejectsCallToLocalVariable) {
  EXPECT_FALSE(compiles("func f() { var g; return g(); }"));
}

TEST(Codegen, RejectsAddressOfLocal) {
  EXPECT_FALSE(compiles("func f() { var x; return &x; }"));
}

TEST(Codegen, RejectsAssignToArrayName) {
  EXPECT_FALSE(compiles("array a[4]; func f() { a = 3; return 0; }"));
}

TEST(Codegen, RejectsContinueOutsideLoop) {
  EXPECT_FALSE(compiles("func f() { continue; return 0; }"));
}

TEST(Codegen, DuplicateGlobalRejected) {
  EXPECT_FALSE(compiles("global g; global g; func f() { return 0; }"));
}

TEST(Codegen, DuplicateParamAndLocalRejected) {
  EXPECT_FALSE(compiles("func f(a) { var a; return 0; }"));
}

TEST(Codegen, ExternsAllowSymbolUse) {
  const CompileResult r = compile(
      "extern jiffies; func f() { jiffies = jiffies + 1; return jiffies; }",
      "t");
  EXPECT_TRUE(r.ok) << (r.errors.empty() ? "?" : r.errors[0]);
  EXPECT_NE(r.text_asm.find("jiffies"), std::string::npos);
}

TEST(Codegen, StringLiteralsLandInDataSection) {
  const CompileResult r =
      compile("func f() { return \"hello\"; }", "unit9");
  ASSERT_TRUE(r.ok);
  EXPECT_NE(r.data_asm.find("str_unit9_0"), std::string::npos);
  EXPECT_NE(r.data_asm.find("hello"), std::string::npos);
  EXPECT_NE(r.text_asm.find("$str_unit9_0"), std::string::npos);
}

TEST(Codegen, GlobalsEmitInitializers) {
  const CompileResult r =
      compile("global g = 0x1234; func f() { return g; }", "t");
  ASSERT_TRUE(r.ok);
  EXPECT_NE(r.data_asm.find(".word 4660"), std::string::npos);
}

TEST(Codegen, ArraysReserveWords) {
  const CompileResult r = compile("array a[7]; func f() { return a; }", "t");
  ASSERT_TRUE(r.ok);
  EXPECT_NE(r.data_asm.find(".space 28"), std::string::npos);
}

TEST(Codegen, FunctionsAreWrappedInFuncDirectives) {
  const CompileResult r = compile("func alpha() { return 1; }", "t");
  ASSERT_TRUE(r.ok);
  EXPECT_NE(r.text_asm.find(".func alpha"), std::string::npos);
  EXPECT_NE(r.text_asm.find(".endfunc"), std::string::npos);
}

TEST(Codegen, AssertEmitsUd2) {
  const CompileResult r =
      compile("func f(x) { assert(x != 0); return x; }", "t");
  ASSERT_TRUE(r.ok);
  EXPECT_NE(r.text_asm.find("ud2a"), std::string::npos);
}

}  // namespace
}  // namespace kfi::minic
