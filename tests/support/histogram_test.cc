#include "support/histogram.h"

#include <gtest/gtest.h>

namespace kfi {
namespace {

TEST(Histogram, LatencyDecadesBucketsBoundariesInclusive) {
  Histogram h = Histogram::latency_decades();
  h.add(0);
  h.add(10);      // boundary -> first bucket
  h.add(11);      // -> second bucket
  h.add(100000);  // boundary -> last bounded bucket
  h.add(100001);  // -> overflow bucket
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(1), 1u);
  EXPECT_EQ(h.count(4), 1u);
  EXPECT_EQ(h.count(5), 1u);
  EXPECT_EQ(h.total(), 5u);
}

TEST(Histogram, Shares) {
  Histogram h({10});
  h.add(1);
  h.add(1);
  h.add(100);
  h.add(200);
  EXPECT_DOUBLE_EQ(h.share(0), 0.5);
  EXPECT_DOUBLE_EQ(h.share(1), 0.5);
}

TEST(Histogram, EmptyShareIsZero) {
  Histogram h({10});
  EXPECT_DOUBLE_EQ(h.share(0), 0.0);
  EXPECT_EQ(h.total(), 0u);
}

TEST(Histogram, Labels) {
  Histogram h = Histogram::latency_decades();
  EXPECT_EQ(h.bucket_label(0), "<=10");
  EXPECT_EQ(h.bucket_label(4), "<=100000");
  EXPECT_EQ(h.bucket_label(5), ">100000");
}

TEST(Histogram, MergeAddsCounts) {
  Histogram a = Histogram::latency_decades();
  Histogram b = Histogram::latency_decades();
  a.add(5);
  b.add(5);
  b.add(5000000);
  a.merge(b);
  EXPECT_EQ(a.count(0), 2u);
  EXPECT_EQ(a.count(5), 1u);
  EXPECT_EQ(a.total(), 3u);
}

TEST(Histogram, EmptyBoundsHasOneBucketAndLabel) {
  // Degenerate but legal: no boundaries means a single catch-all
  // bucket.  bucket_label() used to read bounds_.back() here — UB.
  Histogram h({});
  h.add(0);
  h.add(12345);
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.total(), 2u);
  EXPECT_EQ(h.bucket_label(0), "all");
}

#ifndef NDEBUG
TEST(HistogramDeathTest, MergeRejectsMismatchedShapes) {
  Histogram a({10});
  Histogram b({10, 100});
  EXPECT_DEATH(a.merge(b), "incompatible histograms");
}
#endif

}  // namespace
}  // namespace kfi
