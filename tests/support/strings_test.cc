#include "support/strings.h"

#include <gtest/gtest.h>

namespace kfi {
namespace {

TEST(Strings, Hex32PadsToEightDigits) {
  EXPECT_EQ(hex32(0xc0130a33u), "c0130a33");
  EXPECT_EQ(hex32(0x1bu), "0000001b");
  EXPECT_EQ(hex32(0), "00000000");
  EXPECT_EQ(hex32_prefixed(0xffffffceu), "0xffffffce");
}

TEST(Strings, HexBytesMatchesPaperStyle) {
  const std::uint8_t bytes[] = {0x74, 0x56};
  EXPECT_EQ(hex_bytes(bytes, 2), "74 56");
  EXPECT_EQ(hex_bytes(nullptr, 0), "");
}

TEST(Strings, Format) {
  EXPECT_EQ(format("%d-%s", 42, "x"), "42-x");
  EXPECT_EQ(format("%.1f%%", 33.333), "33.3%");
}

TEST(Strings, SplitKeepsEmptyFields) {
  const auto parts = split("a,,b", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
}

TEST(Strings, SplitSingle) {
  const auto parts = split("abc", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "abc");
}

TEST(Strings, Trim) {
  EXPECT_EQ(trim("  x \t\n"), "x");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim(" \t "), "");
}

TEST(Strings, StartsWith) {
  EXPECT_TRUE(starts_with("do_page_fault", "do_"));
  EXPECT_FALSE(starts_with("do", "do_"));
}

TEST(Strings, WithCommas) {
  EXPECT_EQ(with_commas(0), "0");
  EXPECT_EQ(with_commas(999), "999");
  EXPECT_EQ(with_commas(1000), "1,000");
  EXPECT_EQ(with_commas(28977), "28,977");
  EXPECT_EQ(with_commas(1234567890), "1,234,567,890");
}

TEST(Strings, Percent) {
  EXPECT_EQ(percent(1508, 4559), "33.1%");
  EXPECT_EQ(percent(0, 0), "0.0%");
}

TEST(Strings, ParseU64AcceptsWholeDecimalStrings) {
  std::uint64_t out = 0;
  EXPECT_TRUE(parse_u64("0", out));
  EXPECT_EQ(out, 0u);
  EXPECT_TRUE(parse_u64("42", out));
  EXPECT_EQ(out, 42u);
  EXPECT_TRUE(parse_u64("18446744073709551615", out));  // UINT64_MAX
  EXPECT_EQ(out, UINT64_MAX);
}

TEST(Strings, ParseU64RejectsGarbageAndLeavesOutUntouched) {
  std::uint64_t out = 77;
  // atoi would have silently returned 0 or a prefix for all of these.
  EXPECT_FALSE(parse_u64("", out));
  EXPECT_FALSE(parse_u64("abc", out));
  EXPECT_FALSE(parse_u64("12x", out));
  EXPECT_FALSE(parse_u64("-3", out));
  EXPECT_FALSE(parse_u64("+3", out));
  EXPECT_FALSE(parse_u64(" 3", out));
  EXPECT_FALSE(parse_u64("0x10", out));
  EXPECT_FALSE(parse_u64("18446744073709551616", out));  // UINT64_MAX + 1
  EXPECT_EQ(out, 77u) << "failed parses must not clobber the output";
}

TEST(Strings, ParseU64EnforcesRange) {
  std::uint64_t out = 99;
  EXPECT_FALSE(parse_u64("8", out, 0, 7)) << "bit indices stop at 7";
  EXPECT_FALSE(parse_u64("0", out, 1, 7));
  EXPECT_EQ(out, 99u);
  EXPECT_TRUE(parse_u64("7", out, 0, 7));
  EXPECT_EQ(out, 7u);
  EXPECT_TRUE(parse_u64("1", out, 1, 7));
  EXPECT_EQ(out, 1u);
}

TEST(Strings, ParseJobsAcceptsTheWorkerRange) {
  unsigned jobs = 0;
  EXPECT_TRUE(parse_jobs("1", jobs));
  EXPECT_EQ(jobs, 1u);
  EXPECT_TRUE(parse_jobs("1024", jobs));
  EXPECT_EQ(jobs, 1024u);
  EXPECT_TRUE(parse_jobs("8", jobs));
  EXPECT_EQ(jobs, 8u);
}

TEST(Strings, ParseJobsRejectsZeroOversizeAndGarbage) {
  unsigned jobs = 7;
  EXPECT_FALSE(parse_jobs("0", jobs)) << "a zero-worker pool cannot run";
  EXPECT_FALSE(parse_jobs("1025", jobs));
  EXPECT_FALSE(parse_jobs("", jobs));
  EXPECT_FALSE(parse_jobs("-4", jobs));
  EXPECT_FALSE(parse_jobs("4x", jobs));
  EXPECT_FALSE(parse_jobs("4 ", jobs));
  EXPECT_EQ(jobs, 7u) << "failed parses must not clobber the output";
}

}  // namespace
}  // namespace kfi
