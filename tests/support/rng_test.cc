#include "support/rng.h"

#include <gtest/gtest.h>

#include <set>

namespace kfi {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.below(13), 13u);
  }
}

TEST(Rng, BelowOneIsAlwaysZero) {
  Rng rng(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, BetweenInclusive) {
  Rng rng(9);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.between(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u) << "all values in [-3,3] should appear";
}

TEST(Rng, BitInByteCoversAllBits) {
  Rng rng(11);
  std::set<int> seen;
  for (int i = 0; i < 1000; ++i) {
    const int bit = rng.bit_in_byte();
    EXPECT_GE(bit, 0);
    EXPECT_LE(bit, 7);
    seen.insert(bit);
  }
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, ChanceRoughlyCalibrated) {
  Rng rng(5);
  int hits = 0;
  for (int i = 0; i < 100000; ++i) {
    if (rng.chance(0.25)) ++hits;
  }
  EXPECT_NEAR(hits / 100000.0, 0.25, 0.01);
}

TEST(Rng, ReseedRestartsSequence) {
  Rng rng(123);
  const auto first = rng.next_u64();
  rng.next_u64();
  rng.reseed(123);
  EXPECT_EQ(rng.next_u64(), first);
}

}  // namespace
}  // namespace kfi
