// Profiler tests: kernprof-analog sampling, core-function selection,
// Table 1 shape, and workload->function attribution.
#include "profile/profile.h"

#include <gtest/gtest.h>

#include "workloads/workloads.h"

namespace kfi::profile {
namespace {

const ProfileResult& profile() { return default_profile(); }

TEST(Profile, CollectsKernelSamples) {
  EXPECT_GT(profile().total_kernel_samples, 1000u);
  EXPECT_GT(profile().functions.size(), 20u);
}

TEST(Profile, FunctionsSortedBySamplesDescending) {
  const auto& functions = profile().functions;
  for (std::size_t i = 1; i < functions.size(); ++i) {
    EXPECT_GE(functions[i - 1].samples, functions[i].samples);
  }
}

TEST(Profile, CoreFunctionsCover95Percent) {
  const auto core = profile().core_functions(0.95);
  EXPECT_FALSE(core.empty());
  EXPECT_LT(core.size(), profile().functions.size())
      << "some functions should fall outside the core set";
  std::uint64_t covered = 0;
  for (const std::string& name : core) {
    covered += profile().find(name)->samples;
  }
  EXPECT_GE(static_cast<double>(covered),
            0.95 * static_cast<double>(profile().total_kernel_samples));
}

TEST(Profile, HotPathsAreProfiled) {
  // Functions that must show up given our workloads.
  for (const char* name : {"pipe_read", "pipe_write", "schedule",
                           "do_generic_file_read", "memcpy"}) {
    const FunctionSamples* fs = profile().find(name);
    EXPECT_NE(fs, nullptr) << name;
  }
}

TEST(Profile, BestWorkloadAttribution) {
  // The file-read path should be attributed to fstime, pipes to
  // pipe/context1.
  const std::string file_read = profile().best_workload("do_generic_file_read");
  EXPECT_EQ(file_read, "fstime");
  const std::string pipe_wl = profile().best_workload("pipe_write");
  EXPECT_TRUE(pipe_wl == "pipe" || pipe_wl == "context1") << pipe_wl;
}

TEST(Profile, Table1HasMultipleSubsystems) {
  const auto rows = profile().table1(0.95);
  EXPECT_GE(rows.size(), 4u);
  std::size_t total_core = 0;
  bool has_fs = false;
  bool has_mm = false;
  for (const auto& row : rows) {
    total_core += row.core_functions;
    if (row.subsystem == kernel::Subsystem::Fs) has_fs = row.profiled_functions > 3;
    if (row.subsystem == kernel::Subsystem::Mm) has_mm = row.profiled_functions > 3;
    EXPECT_GE(row.profiled_functions, row.core_functions);
  }
  EXPECT_TRUE(has_fs);
  EXPECT_TRUE(has_mm);
  EXPECT_EQ(total_core, profile().core_functions(0.95).size());
}

TEST(Profile, WorkloadCyclesRecorded) {
  for (const kfi::workloads::Workload& w : kfi::workloads::all_workloads()) {
    const auto it = profile().workload_cycles.find(w.name);
    ASSERT_NE(it, profile().workload_cycles.end()) << w.name;
    EXPECT_GT(it->second, 10'000u) << w.name;
    EXPECT_LT(it->second, 40'000'000u) << w.name;
  }
}

TEST(Profile, UnknownFunctionQueries) {
  EXPECT_EQ(profile().find("no_such_function"), nullptr);
  EXPECT_EQ(profile().best_workload("no_such_function"), "");
}

}  // namespace
}  // namespace kfi::profile
